//! `transyt-store` — durable serving state for `transyt serve --data-dir`.
//!
//! Three pieces, all dependency-free and crash-safe by construction:
//!
//! * A **content-addressed store**: model texts under
//!   `models/<hash>.model` (the session's FNV-1a content hash) and finished
//!   result documents under `results/<fingerprint>.res` (the canonical
//!   [`TaskKey`] fingerprint). Every file is written via temp-file +
//!   atomic rename, so a SIGKILL mid-write leaves the old state, never a
//!   torn file.
//! * A **write-ahead job [`Journal`]**: one checksummed, fsync'd record per
//!   job state transition (`job` → `run` → `done`/`fail`/`cancel`/
//!   `timeout`, plus `model` internings and `evict`ions). Recovery replays
//!   the journal front to back, dropping only a torn tail; a startup
//!   compaction and a size-triggered [`Journal::rewrite`] keep it bounded.
//! * The session's persistence seam: [`Store`] implements
//!   [`transyt_session::StoreHook`], so a [`Session`] wired to a store
//!   persists every freshly interned model and every cacheable finished
//!   result, and answers duplicate submissions **across restarts** from
//!   disk with zero new runs — the on-disk store is keyed by the same
//!   normalized [`TaskKey`] the in-memory memo uses.
//!
//! Because the whole stack is deterministic (byte-identical documents at
//! any thread count), recovery is testable to the byte: a stored document
//! equals the pre-crash one exactly, and a re-run of an interrupted job
//! reproduces it exactly.
//!
//! [`Session`]: transyt_session::Session
//! [`TaskKey`]: transyt_session::TaskKey

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod content;
mod fsio;
mod journal;

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use transyt_session::{content_hash, StoreHook, StoredResult, TaskKey, TaskResult, TaskSpec};

pub use content::ResultDoc;
pub use journal::{Journal, JournalStats, Record, COMPACT_MIN_BYTES};

/// The journal's file name inside the data dir.
pub const JOURNAL_FILE: &str = "journal.log";

/// The exclusive-ownership lock file inside the data dir. Holds the owning
/// process id; created at [`Store::open`], removed on drop.
pub const LOCK_FILE: &str = "lock";

/// Exclusive ownership of a data dir: a `lock` file created with
/// `create_new` (so two racing opens cannot both win) holding the owner's
/// pid. A lock left behind by a SIGKILLed process is detected as stale —
/// its pid no longer exists under `/proc` — and reclaimed; a lock held by
/// a live process is a clear contention error, not a corrupted journal.
#[derive(Debug)]
struct LockFile {
    path: PathBuf,
}

impl LockFile {
    fn acquire(root: &Path) -> io::Result<LockFile> {
        use std::io::Write;
        let path = root.join(LOCK_FILE);
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    writeln!(file, "{}", std::process::id())?;
                    file.sync_all()?;
                    return Ok(LockFile { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let holder = fs::read_to_string(&path).unwrap_or_default();
                    let pid: Option<u32> = holder.trim().parse().ok();
                    let alive = pid.is_some_and(|pid| Path::new(&format!("/proc/{pid}")).exists());
                    if alive {
                        return Err(io::Error::new(
                            io::ErrorKind::AddrInUse,
                            format!(
                                "data dir {} is locked by running process {} \
                                 (stop it, or point --data-dir elsewhere)",
                                root.display(),
                                holder.trim()
                            ),
                        ));
                    }
                    // Stale: the recorded pid is gone (or the file is
                    // unreadable garbage). Reclaim and retry the atomic
                    // create — a concurrent reclaimer may still beat us,
                    // in which case the next round sees its live pid.
                    let _ = fs::remove_file(&path);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// A job reconstructed from the journal at [`Store::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredJob {
    /// The stable job id (the pre-crash submission index).
    pub id: usize,
    /// The command name as journaled.
    pub command: String,
    /// The model's content hash.
    pub model: String,
    /// The textual task parameters, ready for
    /// [`TaskSpec::parse`](transyt_session::TaskSpec::parse).
    pub params: Vec<(String, String)>,
    /// The journaled scheduling class name (empty when the submission
    /// predates priorities; the server applies its default class then).
    pub prio: String,
    /// The last journaled lifecycle state.
    pub status: RecoveredStatus,
    /// The journaled error message of a failed job.
    pub error: Option<String>,
    /// `true` when the job's stored result was garbage-collected.
    pub evicted: bool,
}

/// The last journaled lifecycle state of a [`RecoveredJob`]. `Queued` and
/// `Running` jobs were interrupted by the crash; the server re-enqueues
/// both (determinism makes the re-run produce the same document).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveredStatus {
    /// Submitted, never claimed.
    Queued,
    /// Claimed by a worker when the process died.
    Running,
    /// Completed; the document lives at `results/<result>.res`.
    Done {
        /// The task-key fingerprint addressing the stored result.
        result: String,
    },
    /// Failed with [`RecoveredJob::error`].
    Failed,
    /// Cancelled.
    Cancelled,
    /// The deadline expired.
    TimedOut,
    /// The resource budget was breached.
    BudgetExceeded {
        /// The breached resource (`configs` / `zone-bytes`).
        resource: String,
        /// Usage observed at the breach.
        used: usize,
        /// The configured budget.
        limit: usize,
    },
}

/// Everything [`Store::open`] replayed from the data dir.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// Interned model hashes, oldest first (journal order; model files the
    /// journal does not mention — a crash between file write and record —
    /// are adopted at the end). Texts load through [`Store::model_text`].
    pub models: Vec<String>,
    /// The pre-crash job table, dense by id.
    pub jobs: Vec<RecoveredJob>,
    /// Torn-tail bytes dropped from the journal.
    pub dropped_bytes: u64,
}

/// On-disk object counts, served through `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Stored model files.
    pub models: usize,
    /// Total model bytes.
    pub model_bytes: u64,
    /// Stored result files.
    pub results: usize,
    /// Total result bytes.
    pub result_bytes: u64,
}

/// What an offline [`Store::gc`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Result fingerprints whose files were removed.
    pub removed: Vec<String>,
    /// Result files kept.
    pub kept: usize,
    /// Journal bytes after the closing compaction.
    pub journal_bytes: u64,
}

/// Read-only snapshot of a data dir (`transyt store ls`): never writes,
/// never truncates, safe next to a live server.
#[derive(Debug, Clone, Default)]
pub struct Inspection {
    /// `(hash, bytes)` per stored model, sorted by hash.
    pub models: Vec<(String, u64)>,
    /// `(fingerprint, bytes, age)` per stored result, sorted by fingerprint.
    pub results: Vec<(String, u64, Option<Duration>)>,
    /// The replayed job table.
    pub jobs: Vec<RecoveredJob>,
    /// Valid journal records.
    pub journal_entries: usize,
    /// Journal file bytes (including any torn tail still on disk).
    pub journal_bytes: u64,
    /// Trailing journal bytes that fail to decode (what the next
    /// read-write open will truncate).
    pub torn_bytes: u64,
}

/// Replays journal records into the model list and the dense job table.
/// Transitions are applied defensively: out-of-order ids and transitions on
/// already-terminal jobs are ignored rather than trusted.
fn fold(records: &[Record]) -> (Vec<String>, Vec<RecoveredJob>) {
    let mut models: Vec<String> = Vec::new();
    let mut jobs: Vec<RecoveredJob> = Vec::new();
    let terminal = |status: &RecoveredStatus| {
        !matches!(status, RecoveredStatus::Queued | RecoveredStatus::Running)
    };
    for record in records {
        match record {
            Record::Model { hash } => {
                if !models.iter().any(|m| m == hash) {
                    models.push(hash.clone());
                }
            }
            Record::Job {
                id,
                command,
                model,
                params,
                prio,
            } => {
                if *id == jobs.len() {
                    jobs.push(RecoveredJob {
                        id: *id,
                        command: command.clone(),
                        model: model.clone(),
                        params: params.clone(),
                        prio: prio.clone(),
                        status: RecoveredStatus::Queued,
                        error: None,
                        evicted: false,
                    });
                }
            }
            Record::Run { id } => {
                if let Some(job) = jobs.get_mut(*id) {
                    if !terminal(&job.status) {
                        job.status = RecoveredStatus::Running;
                    }
                }
            }
            Record::Done { id, result } => {
                if let Some(job) = jobs.get_mut(*id) {
                    if !terminal(&job.status) {
                        job.status = RecoveredStatus::Done {
                            result: result.clone(),
                        };
                    }
                }
            }
            Record::Fail { id, error } => {
                if let Some(job) = jobs.get_mut(*id) {
                    if !terminal(&job.status) {
                        job.status = RecoveredStatus::Failed;
                        job.error = Some(error.clone());
                    }
                }
            }
            Record::Cancel { id } => {
                if let Some(job) = jobs.get_mut(*id) {
                    if !terminal(&job.status) {
                        job.status = RecoveredStatus::Cancelled;
                    }
                }
            }
            Record::Timeout { id } => {
                if let Some(job) = jobs.get_mut(*id) {
                    if !terminal(&job.status) {
                        job.status = RecoveredStatus::TimedOut;
                    }
                }
            }
            Record::Budget {
                id,
                resource,
                used,
                limit,
            } => {
                if let Some(job) = jobs.get_mut(*id) {
                    if !terminal(&job.status) {
                        job.status = RecoveredStatus::BudgetExceeded {
                            resource: resource.clone(),
                            used: *used,
                            limit: *limit,
                        };
                    }
                }
            }
            Record::Evict { id } => {
                if let Some(job) = jobs.get_mut(*id) {
                    job.evicted = true;
                }
            }
        }
    }
    (models, jobs)
}

fn dir_entries(dir: &Path, extension: &str) -> Vec<(String, u64, Option<Duration>)> {
    let Ok(entries) = fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut listed: Vec<(String, u64, Option<Duration>)> = entries
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(extension) {
                return None;
            }
            let stem = path.file_stem()?.to_str()?.to_owned();
            let meta = entry.metadata().ok()?;
            let age = meta.modified().ok().and_then(|m| m.elapsed().ok());
            Some((stem, meta.len(), age))
        })
        .collect();
    listed.sort_by(|a, b| a.0.cmp(&b.0));
    listed
}

/// The open data dir: journal plus content-addressed model/result files.
/// One process must own a data dir at a time (the journal is append-only
/// per file handle); `transyt store ls` uses the read-only
/// [`inspect`](Store::inspect) path instead.
pub struct Store {
    root: PathBuf,
    fsync: bool,
    journal: Journal,
    /// Held for the store's lifetime; removing the file on drop releases
    /// the data dir to the next owner.
    _lock: LockFile,
}

impl Store {
    /// Opens (creating if needed) the data dir at `root`, takes its
    /// exclusive [`LOCK_FILE`], replays the journal — truncating a torn
    /// tail — and returns the store plus the recovered state. `fsync`
    /// controls whether journal appends and content writes are flushed to
    /// disk before being reported durable.
    ///
    /// # Errors
    ///
    /// `AddrInUse` when another live process holds the data dir (its pid is
    /// in the error message); a lock left by a dead process is reclaimed
    /// silently. Plus filesystem errors creating the layout or reading the
    /// journal.
    pub fn open(root: impl Into<PathBuf>, fsync: bool) -> io::Result<(Store, Recovery)> {
        let root = root.into();
        fs::create_dir_all(root.join("models"))?;
        fs::create_dir_all(root.join("results"))?;
        // The lock precedes the journal open: exactly one process may hold
        // the append handle (and truncate torn tails) at a time.
        let lock = LockFile::acquire(&root)?;
        let (journal, records) = Journal::open(&root.join(JOURNAL_FILE), fsync)?;
        let dropped_bytes = journal.stats().torn_bytes_dropped;
        let (mut models, jobs) = fold(&records);
        // Adopt model files the journal missed (a crash can land between
        // the atomic file write and the journal append).
        for (hash, _, _) in dir_entries(&root.join("models"), "model") {
            if !models.contains(&hash) {
                models.push(hash);
            }
        }
        Ok((
            Store {
                root,
                fsync,
                journal,
                _lock: lock,
            },
            Recovery {
                models,
                jobs,
                dropped_bytes,
            },
        ))
    }

    /// The data dir this store owns.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn model_path(&self, hash: &str) -> PathBuf {
        self.root.join("models").join(format!("{hash}.model"))
    }

    fn result_path(&self, fingerprint: &str) -> PathBuf {
        self.root.join("results").join(format!("{fingerprint}.res"))
    }

    /// Persists a model text under its content hash (atomic write + journal
    /// record) unless it is already stored. Returns `true` when the model
    /// was freshly written.
    ///
    /// # Errors
    ///
    /// `InvalidInput` when `hash` is not the text's content hash, plus
    /// filesystem errors.
    pub fn save_model_text(&self, hash: &str, text: &str) -> io::Result<bool> {
        if content_hash(text) != hash {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("hash `{hash}` does not match the model text"),
            ));
        }
        let path = self.model_path(hash);
        if path.exists() {
            return Ok(false);
        }
        fsio::write_atomic(&path, text.as_bytes(), self.fsync)?;
        self.journal.append(&Record::Model {
            hash: hash.to_owned(),
        })?;
        Ok(true)
    }

    /// Loads a stored model text, verifying it still hashes to `hash`.
    pub fn model_text(&self, hash: &str) -> Option<String> {
        let text = fs::read_to_string(self.model_path(hash)).ok()?;
        (content_hash(&text) == hash).then_some(text)
    }

    /// Persists a finished result under its key fingerprint unless already
    /// stored (duplicate keys share one file; re-runs after an eviction
    /// re-create it). Returns the fingerprint.
    ///
    /// # Errors
    ///
    /// Filesystem errors writing the file.
    pub fn save_result_if_absent(
        &self,
        key: &TaskKey,
        text: &str,
        document: &str,
    ) -> io::Result<String> {
        let fingerprint = key.fingerprint();
        let path = self.result_path(&fingerprint);
        if !path.exists() {
            fsio::write_atomic(
                &path,
                &content::encode_result(key.canonical(), text, document),
                self.fsync,
            )?;
        }
        Ok(fingerprint)
    }

    /// Loads the stored result for `key`, verifying the full canonical key
    /// in the file header (fingerprints are not trusted against collision
    /// or staleness).
    pub fn result(&self, key: &TaskKey) -> Option<ResultDoc> {
        let bytes = fs::read(self.result_path(&key.fingerprint())).ok()?;
        let doc = content::decode_result(&bytes)?;
        (doc.key == key.canonical()).then_some(doc)
    }

    /// Removes a stored result file. Returns `true` when a file was
    /// actually deleted.
    pub fn remove_result(&self, fingerprint: &str) -> bool {
        fs::remove_file(self.result_path(fingerprint)).is_ok()
    }

    /// Age of a stored result file (time since last write).
    pub fn result_age(&self, fingerprint: &str) -> Option<Duration> {
        fs::metadata(self.result_path(fingerprint))
            .ok()?
            .modified()
            .ok()?
            .elapsed()
            .ok()
    }

    /// Appends one journal record (fsync'd per the open mode).
    ///
    /// # Errors
    ///
    /// Filesystem errors writing or syncing the journal.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        self.journal.append(record)
    }

    /// Compacts the journal to exactly `records` (atomic rewrite).
    ///
    /// # Errors
    ///
    /// Filesystem errors writing the replacement journal.
    pub fn compact(&self, records: &[Record]) -> io::Result<()> {
        self.journal.rewrite(records)
    }

    /// `true` once the journal's size trigger asks for a compaction.
    pub fn should_compact(&self) -> bool {
        self.journal.should_compact()
    }

    /// The journal's size counters.
    pub fn journal_stats(&self) -> JournalStats {
        self.journal.stats()
    }

    /// Counts and byte totals of the stored models and results.
    pub fn disk_stats(&self) -> DiskStats {
        let models = dir_entries(&self.root.join("models"), "model");
        let results = dir_entries(&self.root.join("results"), "res");
        DiskStats {
            models: models.len(),
            model_bytes: models.iter().map(|(_, bytes, _)| bytes).sum(),
            results: results.len(),
            result_bytes: results.iter().map(|(_, bytes, _)| bytes).sum(),
        }
    }

    /// Deletes result files whose fingerprint is not in `referenced` (the
    /// orphan sweep of startup GC). Returns the removed fingerprints.
    pub fn remove_unreferenced(&self, referenced: &HashSet<String>) -> Vec<String> {
        let mut removed = Vec::new();
        for (fingerprint, _, _) in dir_entries(&self.root.join("results"), "res") {
            if !referenced.contains(&fingerprint) && self.remove_result(&fingerprint) {
                removed.push(fingerprint);
            }
        }
        removed
    }

    /// Builds the compacted journal representation of a recovered state:
    /// model records, then per job its `job` record plus the terminal /
    /// `evict` records that reproduce its status on replay.
    pub fn compaction_records(models: &[String], jobs: &[RecoveredJob]) -> Vec<Record> {
        let mut records: Vec<Record> = models
            .iter()
            .map(|hash| Record::Model { hash: hash.clone() })
            .collect();
        for job in jobs {
            records.push(Record::Job {
                id: job.id,
                command: job.command.clone(),
                model: job.model.clone(),
                params: job.params.clone(),
                prio: job.prio.clone(),
            });
            match &job.status {
                RecoveredStatus::Queued => {}
                RecoveredStatus::Running => records.push(Record::Run { id: job.id }),
                RecoveredStatus::Done { result } => records.push(Record::Done {
                    id: job.id,
                    result: result.clone(),
                }),
                RecoveredStatus::Failed => records.push(Record::Fail {
                    id: job.id,
                    error: job.error.clone().unwrap_or_default(),
                }),
                RecoveredStatus::Cancelled => records.push(Record::Cancel { id: job.id }),
                RecoveredStatus::TimedOut => records.push(Record::Timeout { id: job.id }),
                RecoveredStatus::BudgetExceeded {
                    resource,
                    used,
                    limit,
                } => records.push(Record::Budget {
                    id: job.id,
                    resource: resource.clone(),
                    used: *used,
                    limit: *limit,
                }),
            }
            if job.evicted {
                records.push(Record::Evict { id: job.id });
            }
        }
        records
    }

    /// Offline garbage collection (`transyt store gc`): applies the same
    /// LRU-by-age + TTL rules the server applies in memory to the stored
    /// result files, marks the affected jobs evicted, sweeps orphans and
    /// compacts the journal. `recovery` must be this store's own
    /// [`Store::open`] result; it is updated in place.
    ///
    /// # Errors
    ///
    /// Filesystem errors from the closing compaction.
    pub fn gc(
        &self,
        recovery: &mut Recovery,
        keep_results: usize,
        result_ttl: Option<Duration>,
    ) -> io::Result<GcReport> {
        // Live = result files referenced by a non-evicted done job.
        let mut live: Vec<(String, Duration)> = Vec::new();
        for job in &recovery.jobs {
            if job.evicted {
                continue;
            }
            if let RecoveredStatus::Done { result } = &job.status {
                if !live.iter().any(|(fp, _)| fp == result) {
                    // A missing file (None) is already gone; it is handled as
                    // evicted below.
                    if let Some(age) = self.result_age(result) {
                        live.push((result.clone(), age));
                    }
                }
            }
        }
        // TTL, then the LRU cap (file age stands in for recency: the server
        // refreshes neither on disk, so age-of-write is the disk-side LRU).
        let mut drop: HashSet<String> = HashSet::new();
        if let Some(ttl) = result_ttl {
            for (fp, age) in &live {
                if *age >= ttl {
                    drop.insert(fp.clone());
                }
            }
        }
        let mut survivors: Vec<&(String, Duration)> =
            live.iter().filter(|(fp, _)| !drop.contains(fp)).collect();
        survivors.sort_by_key(|(_, age)| *age);
        for (fp, _) in survivors.iter().skip(keep_results.max(1)) {
            drop.insert(fp.clone());
        }
        let mut removed: Vec<String> = Vec::new();
        for fp in &drop {
            if self.remove_result(fp) {
                removed.push(fp.clone());
            }
        }
        removed.sort();
        // Reflect the deletions (and any already-missing files) in the job
        // table, then compact so the next open agrees.
        let mut referenced: HashSet<String> = HashSet::new();
        for job in &mut recovery.jobs {
            if let RecoveredStatus::Done { result } = &job.status {
                if !job.evicted && self.result_age(result).is_none() {
                    job.evicted = true;
                }
                if !job.evicted {
                    referenced.insert(result.clone());
                }
            }
        }
        self.remove_unreferenced(&referenced);
        self.compact(&Store::compaction_records(&recovery.models, &recovery.jobs))?;
        Ok(GcReport {
            removed,
            kept: referenced.len(),
            journal_bytes: self.journal_stats().bytes,
        })
    }

    /// Read-only snapshot of the data dir at `root` — no truncation, no
    /// lock, safe to run while a server owns the dir.
    ///
    /// # Errors
    ///
    /// `NotFound` when `root` is not a directory, plus filesystem errors
    /// reading the journal.
    pub fn inspect(root: impl Into<PathBuf>) -> io::Result<Inspection> {
        let root = root.into();
        if !root.is_dir() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no data dir at {}", root.display()),
            ));
        }
        let journal_path = root.join(JOURNAL_FILE);
        let (records, torn_bytes) = Journal::replay(&journal_path)?;
        let journal_bytes = fs::metadata(&journal_path).map(|m| m.len()).unwrap_or(0);
        let (_, jobs) = fold(&records);
        Ok(Inspection {
            models: dir_entries(&root.join("models"), "model")
                .into_iter()
                .map(|(hash, bytes, _)| (hash, bytes))
                .collect(),
            results: dir_entries(&root.join("results"), "res"),
            jobs,
            journal_entries: records.len(),
            journal_bytes,
            torn_bytes,
        })
    }
}

/// The persistence seam: a [`Session`](transyt_session::Session) wired to a
/// store (via [`Session::set_store_hook`]) persists models and cacheable
/// results as they appear and serves duplicate submissions from disk across
/// restarts. Hook failures are reported on stderr and never fail the run —
/// persistence degrades, verification does not.
///
/// [`Session::set_store_hook`]: transyt_session::Session::set_store_hook
impl StoreHook for Store {
    fn load_result(&self, key: &TaskKey) -> Option<StoredResult> {
        self.result(key).map(|doc| StoredResult {
            text: doc.text,
            document: doc.document,
        })
    }

    fn save_result(&self, _spec: &TaskSpec, key: &TaskKey, result: &TaskResult) {
        if let Err(e) = self.save_result_if_absent(key, &result.text, &result.document) {
            eprintln!(
                "transyt-store: persisting result {}: {e}",
                key.fingerprint()
            );
        }
    }

    fn save_model(&self, hash: &str, text: &str) {
        if let Err(e) = self.save_model_text(hash, text) {
            eprintln!("transyt-store: persisting model {hash}: {e}");
        }
    }
}

/// Unique per-test scratch dir under the system temp dir.
#[cfg(test)]
pub(crate) fn test_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "transyt-store-test-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("test dir");
    dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use transyt_session::TaskSpec;

    fn job_record(id: usize, command: &str) -> Record {
        Record::Job {
            id,
            command: command.to_owned(),
            model: "00ff00ff00ff00ff".to_owned(),
            params: vec![("threads".to_owned(), "1".to_owned())],
            prio: "batch".to_owned(),
        }
    }

    #[test]
    fn fold_replays_lifecycles_defensively() {
        let (models, jobs) = fold(&[
            Record::Model {
                hash: "aa".to_owned(),
            },
            Record::Model {
                hash: "aa".to_owned(),
            },
            job_record(0, "verify"),
            job_record(1, "zones"),
            job_record(5, "zones"), // out-of-order id: ignored
            Record::Run { id: 0 },
            Record::Done {
                id: 0,
                result: "fp0".to_owned(),
            },
            Record::Cancel { id: 0 }, // transition on a terminal job: ignored
            Record::Run { id: 1 },
            Record::Evict { id: 0 },
            Record::Run { id: 99 }, // unknown id: ignored
            job_record(2, "zones"),
            Record::Budget {
                id: 2,
                resource: "configs".to_owned(),
                used: 5_001,
                limit: 5_000,
            },
        ]);
        assert_eq!(models, vec!["aa"]);
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[2].prio, "batch");
        assert_eq!(
            jobs[2].status,
            RecoveredStatus::BudgetExceeded {
                resource: "configs".to_owned(),
                used: 5_001,
                limit: 5_000,
            }
        );
        assert_eq!(
            jobs[0].status,
            RecoveredStatus::Done {
                result: "fp0".to_owned()
            }
        );
        assert!(jobs[0].evicted);
        assert_eq!(jobs[1].status, RecoveredStatus::Running);
        assert!(!jobs[1].evicted);
    }

    #[test]
    fn models_and_results_survive_reopen_byte_identical() {
        let dir = test_dir("store-roundtrip");
        let text = "tts m\nstate s0 s0\ninitial s0\n";
        let hash = content_hash(text);
        let key = TaskSpec::verify(&hash).key();
        {
            let (store, recovery) = Store::open(&dir, true).unwrap();
            assert!(recovery.models.is_empty() && recovery.jobs.is_empty());
            assert!(store.save_model_text(&hash, text).unwrap());
            assert!(!store.save_model_text(&hash, text).unwrap());
            assert!(store.save_model_text("0000", text).is_err());
            store
                .save_result_if_absent(&key, "the text\n", "{\"doc\":1}\n")
                .unwrap();
        }
        let (store, recovery) = Store::open(&dir, false).unwrap();
        assert_eq!(recovery.models, vec![hash.clone()]);
        assert_eq!(store.model_text(&hash).as_deref(), Some(text));
        let doc = store.result(&key).unwrap();
        assert_eq!(doc.text, "the text\n");
        assert_eq!(doc.document, "{\"doc\":1}\n");
        // A different key never reads another key's file, even if the
        // fingerprint file existed.
        assert!(store.result(&TaskSpec::reach(&hash).key()).is_none());
        let stats = store.disk_stats();
        assert_eq!((stats.models, stats.results), (1, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn model_files_missing_from_the_journal_are_adopted() {
        let dir = test_dir("store-adopt");
        let text = "tts m\nstate s0 s0\ninitial s0\n";
        let hash = content_hash(text);
        fs::create_dir_all(dir.join("models")).unwrap();
        fs::write(dir.join("models").join(format!("{hash}.model")), text).unwrap();
        let (store, recovery) = Store::open(&dir, false).unwrap();
        assert_eq!(recovery.models, vec![hash.clone()]);
        assert_eq!(store.model_text(&hash).as_deref(), Some(text));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_applies_cap_ttl_and_orphan_sweep() {
        let dir = test_dir("store-gc");
        let (store, _) = Store::open(&dir, false).unwrap();
        let keys: Vec<TaskKey> = (1..=3)
            .map(|threads| TaskSpec::verify("feed").threads(threads).key())
            .collect();
        let mut jobs = Vec::new();
        for (id, key) in keys.iter().enumerate() {
            let fp = store
                .save_result_if_absent(key, "text\n", "{\"id\":0}\n")
                .unwrap();
            store
                .append(&Record::Job {
                    id,
                    command: "verify".to_owned(),
                    model: "feed".to_owned(),
                    params: vec![("threads".to_owned(), (id + 1).to_string())],
                    prio: "batch".to_owned(),
                })
                .unwrap();
            store.append(&Record::Done { id, result: fp }).unwrap();
            jobs.push(id);
        }
        // An orphan file no job references.
        let orphan = TaskSpec::zones("feed").key();
        store.save_result_if_absent(&orphan, "o\n", "{}\n").unwrap();
        drop(store);

        let (store, mut recovery) = Store::open(&dir, false).unwrap();
        assert_eq!(recovery.jobs.len(), 3);
        let report = store.gc(&mut recovery, 2, None).unwrap();
        // Cap 2: one referenced file dropped, the orphan swept, two kept.
        assert_eq!(report.removed.len(), 1);
        assert_eq!(report.kept, 2);
        assert_eq!(store.disk_stats().results, 2);
        assert_eq!(
            recovery.jobs.iter().filter(|j| j.evicted).count(),
            1,
            "{:?}",
            recovery.jobs
        );
        // TTL 0 evicts everything that is left.
        let report = store
            .gc(&mut recovery, 16, Some(Duration::from_secs(0)))
            .unwrap();
        assert_eq!(report.kept, 0);
        assert_eq!(store.disk_stats().results, 0);
        // The compacted journal replays to the same evicted state.
        drop(store);
        let (_, replayed) = Store::open(&dir, false).unwrap();
        assert!(replayed.jobs.iter().all(|j| j.evicted));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lock_file_grants_exclusive_ownership_and_reclaims_stale_locks() {
        let dir = test_dir("store-lock");
        let (store, _) = Store::open(&dir, false).unwrap();
        let lock_path = dir.join(LOCK_FILE);
        assert_eq!(
            fs::read_to_string(&lock_path).unwrap().trim(),
            std::process::id().to_string()
        );
        // A second open while this (live) process holds the lock is refused
        // with a message naming the holder.
        let contended = Store::open(&dir, false);
        let error = contended.err().expect("second open must be refused");
        assert_eq!(error.kind(), io::ErrorKind::AddrInUse);
        assert!(error.to_string().contains("locked by running process"));
        // Dropping the store releases the dir.
        drop(store);
        assert!(!lock_path.exists());
        // A stale lock (dead pid — beyond Linux's pid_max) is reclaimed.
        fs::write(&lock_path, "4294967295\n").unwrap();
        let (store, _) = Store::open(&dir, false).unwrap();
        assert_eq!(
            fs::read_to_string(&lock_path).unwrap().trim(),
            std::process::id().to_string()
        );
        drop(store);
        // Unreadable garbage counts as stale too.
        fs::write(&lock_path, "not a pid").unwrap();
        let (store, _) = Store::open(&dir, false).unwrap();
        drop(store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn inspect_is_read_only_and_reports_torn_tails() {
        let dir = test_dir("store-inspect");
        assert!(Store::inspect(dir.join("missing")).is_err());
        {
            let (store, _) = Store::open(&dir, false).unwrap();
            store.append(&job_record(0, "verify")).unwrap();
        }
        // Garbage after the valid prefix.
        let journal = dir.join(JOURNAL_FILE);
        let mut bytes = fs::read(&journal).unwrap();
        bytes.extend_from_slice(b"v1 torn");
        fs::write(&journal, &bytes).unwrap();
        let inspection = Store::inspect(&dir).unwrap();
        assert_eq!(inspection.journal_entries, 1);
        assert_eq!(inspection.torn_bytes, 7);
        assert_eq!(inspection.jobs.len(), 1);
        // Read-only: the torn tail is still there afterwards.
        assert_eq!(fs::read(&journal).unwrap(), bytes);
        let _ = fs::remove_dir_all(&dir);
    }
}
