//! Framing of the content-addressed files: result documents under
//! `results/<fingerprint>.res`, models under `models/<hash>.model`.
//!
//! A result file carries a small line-oriented header (the full canonical
//! task key, so fingerprint collisions and stale files are detected on
//! load) followed by the raw bytes of the two canonical renderings:
//!
//! ```text
//! transyt-result v1
//! key <escaped canonical task key>
//! text <text byte length>
//! document <document byte length>
//!
//! <text bytes><document bytes>
//! ```
//!
//! The document bytes are stored verbatim, which is what makes "served
//! byte-identical after recovery" trivially true rather than a
//! re-serialization property.

use crate::codec::{escape, unescape};

/// A decoded result file: the canonical key it was stored under and the two
/// canonical renderings, byte-identical to the pre-crash
/// [`TaskResult`](transyt_session::TaskResult) fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultDoc {
    /// The canonical task key ([`TaskKey::canonical`]).
    ///
    /// [`TaskKey::canonical`]: transyt_session::TaskKey::canonical
    pub key: String,
    /// The human-readable rendering.
    pub text: String,
    /// The JSON document bytes (what `GET /jobs/{id}/result` serves).
    pub document: String,
}

/// Encodes a result file.
pub(crate) fn encode_result(key_canonical: &str, text: &str, document: &str) -> Vec<u8> {
    let mut bytes = format!(
        "transyt-result v1\nkey {}\ntext {}\ndocument {}\n\n",
        escape(key_canonical),
        text.len(),
        document.len()
    )
    .into_bytes();
    bytes.extend_from_slice(text.as_bytes());
    bytes.extend_from_slice(document.as_bytes());
    bytes
}

/// Decodes a result file. `None` for truncated, malformed or
/// length-mismatching content (an atomically-renamed file should never be
/// any of those; defense in depth against manual edits).
pub(crate) fn decode_result(bytes: &[u8]) -> Option<ResultDoc> {
    let sep = bytes.windows(2).position(|w| w == b"\n\n")?;
    let header = std::str::from_utf8(&bytes[..sep]).ok()?;
    let mut lines = header.lines();
    if lines.next()? != "transyt-result v1" {
        return None;
    }
    let key = unescape(lines.next()?.strip_prefix("key ")?);
    let text_len: usize = lines.next()?.strip_prefix("text ")?.parse().ok()?;
    let document_len: usize = lines.next()?.strip_prefix("document ")?.parse().ok()?;
    if lines.next().is_some() {
        return None;
    }
    let body = &bytes[sep + 2..];
    if body.len() != text_len + document_len {
        return None;
    }
    let text = String::from_utf8(body[..text_len].to_vec()).ok()?;
    let document = String::from_utf8(body[text_len..].to_vec()).ok()?;
    Some(ResultDoc {
        key,
        text,
        document,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_files_round_trip_byte_identical() {
        let key = "model=00ff command=zones threads=2";
        let text = "timed state space: 7 configurations\nwitness trace:\n  s0\n";
        let document = "{\"model\":\"x\",\"configurations\":7}\n";
        let bytes = encode_result(key, text, document);
        let doc = decode_result(&bytes).unwrap();
        assert_eq!(doc.key, key);
        assert_eq!(doc.text, text);
        assert_eq!(doc.document, document);
    }

    #[test]
    fn truncated_or_tampered_files_fail_to_decode() {
        let bytes = encode_result("key", "text", "document\n");
        assert!(decode_result(&bytes[..bytes.len() - 1]).is_none());
        assert!(decode_result(b"not a result file").is_none());
        let mut extended = bytes.clone();
        extended.push(b'x');
        assert!(decode_result(&extended).is_none());
    }
}
