//! Crash-safe filesystem primitives: temp-file + atomic-rename writes.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique-per-call temp sibling of `path` (two threads persisting the same
/// target must not interleave writes into one temp file).
fn sibling_tmp(path: &Path) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    path.with_file_name(format!(
        ".{name}.{}.{}.tmp",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Flushes the directory entry containing `path` (best effort: on platforms
/// where directories cannot be opened for syncing this is a no-op).
pub(crate) fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Writes `bytes` to `path` atomically: the content goes to a unique sibling
/// temp file which is renamed over the target, so a reader (or a recovery
/// pass after SIGKILL) sees either the old content or the complete new
/// content — never a torn prefix. With `fsync` the file data is flushed
/// before the rename and the directory entry after it.
pub(crate) fn write_atomic(path: &Path, bytes: &[u8], fsync: bool) -> io::Result<()> {
    let tmp = sibling_tmp(path);
    let write = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        if fsync {
            file.sync_all()?;
        }
        fs::rename(&tmp, path)
    })();
    if write.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    write?;
    if fsync {
        sync_parent_dir(path);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_replaces_content_and_cleans_temp_files() {
        let dir = crate::test_dir("fsio");
        let path = dir.join("target.txt");
        write_atomic(&path, b"first", true).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second", false).unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }
}
