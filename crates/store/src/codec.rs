//! Wire-safe text escaping shared by the journal records and the result
//! file headers: every byte outside `[A-Za-z0-9._~-]` becomes `%XX`, so an
//! escaped field never contains whitespace (journal records stay
//! space-separated) or a newline (headers stay line-oriented).

/// Escapes `text` into the space-free `%XX` form.
pub(crate) fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for byte in text.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'~' | b'-' => {
                out.push(byte as char);
            }
            other => out.push_str(&format!("%{other:02X}")),
        }
    }
    out
}

/// Reverses [`escape`]. Lenient: malformed escapes are kept literally, so a
/// decode never fails (the journal checksum is what detects corruption).
pub(crate) fn unescape(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let hex = (bytes[i] == b'%' && i + 2 < bytes.len())
            .then(|| std::str::from_utf8(&bytes[i + 1..i + 3]).ok())
            .flatten()
            .and_then(|pair| u8::from_str_radix(pair, 16).ok());
        match hex {
            Some(byte) => {
                out.push(byte);
                i += 3;
            }
            None => {
                out.push(bytes[i]);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_and_stays_space_free() {
        for text in [
            "",
            "plain-text_0.9~",
            "spaces and\nnewlines\tand % signs",
            "ünïcode ✓",
            "a=b&c=d",
        ] {
            let escaped = escape(text);
            assert!(
                !escaped.contains(' ') && !escaped.contains('\n'),
                "{escaped}"
            );
            assert_eq!(unescape(&escaped), text);
        }
        // Lenient decode keeps malformed escapes literally.
        assert_eq!(unescape("%2Gx%"), "%2Gx%");
    }
}
