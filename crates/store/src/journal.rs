//! The append-only write-ahead job journal.
//!
//! One line per record, each carrying its own FNV-1a checksum:
//!
//! ```text
//! v1 <type> <fields…> <crc16hex>\n
//! ```
//!
//! Fields that may contain arbitrary text (job parameters, error messages)
//! are `%XX`-escaped so a record never spans lines and tokens never contain
//! spaces. Appends are fsync'd (configurable), so a record that made it to
//! disk is complete or absent. Recovery scans the file front to back and
//! stops at the first line that fails to decode — a torn tail (the partial
//! record a SIGKILL or power loss can leave) is dropped and truncated away,
//! and every record before it is kept.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use transyt_session::content_hash;

use crate::codec::{escape, unescape};

/// One journal record: a model interning or a job state transition. The
/// grammar is documented in `docs/SERVER.md` ("Persistence & recovery").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A model was interned; its text lives at `models/<hash>.model`.
    Model {
        /// The model's content hash.
        hash: String,
    },
    /// A job was submitted. `id` is the job's stable index, `params` the
    /// textual `(name, value)` pairs [`TaskSpec::parse`] lowers (the same
    /// vocabulary the server's query strings use), so replay re-normalizes
    /// through exactly the submission path.
    ///
    /// [`TaskSpec::parse`]: transyt_session::TaskSpec::parse
    Job {
        /// The job id (dense: the submission index).
        id: usize,
        /// The command name (`verify` / `reach` / `zones`).
        command: String,
        /// The model's content hash.
        model: String,
        /// Textual task parameters.
        params: Vec<(String, String)>,
        /// The scheduling class name (`interactive` / `batch` /
        /// `background`); empty when the submission predates priorities
        /// (the server then applies its default class).
        prio: String,
    },
    /// A worker claimed the job.
    Run {
        /// The job id.
        id: usize,
    },
    /// The job completed; its document lives at `results/<result>.res`.
    Done {
        /// The job id.
        id: usize,
        /// The task-key fingerprint addressing the stored result.
        result: String,
    },
    /// The job failed with an error message.
    Fail {
        /// The job id.
        id: usize,
        /// The error message.
        error: String,
    },
    /// The job was cancelled.
    Cancel {
        /// The job id.
        id: usize,
    },
    /// The job's deadline expired.
    Timeout {
        /// The job id.
        id: usize,
    },
    /// The job's resource budget was breached and the run aborted.
    Budget {
        /// The job id.
        id: usize,
        /// The breached resource (`configs` / `zone-bytes`).
        resource: String,
        /// Usage observed at the breach.
        used: usize,
        /// The configured budget.
        limit: usize,
    },
    /// The job's stored result document was garbage-collected (LRU cap or
    /// TTL); fetches answer `410 Gone` after replay, like before the
    /// restart.
    Evict {
        /// The job id.
        id: usize,
    },
}

fn encode_params(params: &[(String, String)]) -> String {
    if params.is_empty() {
        return "-".to_owned();
    }
    params
        .iter()
        .map(|(name, value)| format!("{}={}", escape(name), escape(value)))
        .collect::<Vec<_>>()
        .join("&")
}

fn decode_params(field: &str) -> Vec<(String, String)> {
    if field == "-" {
        return Vec::new();
    }
    field
        .split('&')
        .map(|pair| match pair.split_once('=') {
            Some((name, value)) => (unescape(name), unescape(value)),
            None => (unescape(pair), String::new()),
        })
        .collect()
}

fn encode_text(text: &str) -> String {
    if text.is_empty() {
        "-".to_owned()
    } else {
        escape(text)
    }
}

fn decode_text(field: &str) -> String {
    if field == "-" {
        String::new()
    } else {
        unescape(field)
    }
}

impl Record {
    /// Encodes the record as its checksummed journal line (trailing `\n`).
    pub fn encode(&self) -> String {
        let body = match self {
            Record::Model { hash } => format!("v1 model {hash}"),
            Record::Job {
                id,
                command,
                model,
                params,
                prio,
            } => format!(
                "v1 job {id} {command} {model} {} {}",
                encode_params(params),
                encode_text(prio)
            ),
            Record::Run { id } => format!("v1 run {id}"),
            Record::Done { id, result } => format!("v1 done {id} {result}"),
            Record::Fail { id, error } => format!("v1 fail {id} {}", encode_text(error)),
            Record::Cancel { id } => format!("v1 cancel {id}"),
            Record::Timeout { id } => format!("v1 timeout {id}"),
            Record::Budget {
                id,
                resource,
                used,
                limit,
            } => format!("v1 budget {id} {} {used} {limit}", encode_text(resource)),
            Record::Evict { id } => format!("v1 evict {id}"),
        };
        let crc = content_hash(&body);
        format!("{body} {crc}\n")
    }

    /// Decodes one journal line (without the trailing `\n`). `None` for
    /// torn, corrupted or checksum-mismatching lines.
    pub fn decode(line: &str) -> Option<Record> {
        let (body, crc) = line.rsplit_once(' ')?;
        if content_hash(body) != crc {
            return None;
        }
        let mut tokens = body.split(' ');
        if tokens.next()? != "v1" {
            return None;
        }
        let kind = tokens.next()?;
        fn id(tokens: &mut std::str::Split<'_, char>) -> Option<usize> {
            tokens.next()?.parse().ok()
        }
        let record = match kind {
            "model" => Record::Model {
                hash: tokens.next()?.to_owned(),
            },
            "job" => Record::Job {
                id: id(&mut tokens)?,
                command: tokens.next()?.to_owned(),
                model: tokens.next()?.to_owned(),
                params: decode_params(tokens.next()?),
                // Absent in pre-priority journals: decode to "unspecified"
                // so old data dirs replay cleanly.
                prio: tokens.next().map(decode_text).unwrap_or_default(),
            },
            "run" => Record::Run {
                id: id(&mut tokens)?,
            },
            "done" => Record::Done {
                id: id(&mut tokens)?,
                result: tokens.next()?.to_owned(),
            },
            "fail" => Record::Fail {
                id: id(&mut tokens)?,
                error: decode_text(tokens.next()?),
            },
            "cancel" => Record::Cancel {
                id: id(&mut tokens)?,
            },
            "timeout" => Record::Timeout {
                id: id(&mut tokens)?,
            },
            "budget" => Record::Budget {
                id: id(&mut tokens)?,
                resource: decode_text(tokens.next()?),
                used: id(&mut tokens)?,
                limit: id(&mut tokens)?,
            },
            "evict" => Record::Evict {
                id: id(&mut tokens)?,
            },
            _ => return None,
        };
        tokens.next().is_none().then_some(record)
    }
}

/// Size counters of a [`Journal`], served through `/healthz`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Records currently in the journal file.
    pub entries: u64,
    /// Bytes currently in the journal file.
    pub bytes: u64,
    /// Records right after the last compaction (or open).
    pub compacted_entries: u64,
    /// Bytes right after the last compaction (or open) — the baseline the
    /// size-triggered rewrite compares against.
    pub compacted_bytes: u64,
    /// Torn-tail bytes dropped when the journal was opened.
    pub torn_bytes_dropped: u64,
}

/// A journal only compacts once it outgrows this floor (small journals are
/// not worth rewriting).
pub const COMPACT_MIN_BYTES: u64 = 64 * 1024;

struct JournalInner {
    file: File,
    stats: JournalStats,
}

/// The open write-ahead journal: replay happens at [`Journal::open`];
/// afterwards records are appended one fsync'd line at a time and
/// [`Journal::rewrite`] compacts the file in place (atomic rename).
pub struct Journal {
    path: PathBuf,
    fsync: bool,
    inner: Mutex<JournalInner>,
}

/// Scans raw journal bytes: the decoded records of the longest valid prefix,
/// plus that prefix's byte length.
fn scan(bytes: &[u8]) -> (Vec<Record>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') {
        let line = &bytes[pos..pos + nl];
        let Some(record) = std::str::from_utf8(line).ok().and_then(Record::decode) else {
            break;
        };
        records.push(record);
        pos += nl + 1;
    }
    (records, pos as u64)
}

impl Journal {
    /// Opens (or creates) the journal at `path`, replays it and truncates
    /// away any torn tail. Returns the journal and the replayed records.
    ///
    /// # Errors
    ///
    /// Filesystem errors opening, reading or truncating the file.
    pub fn open(path: &Path, fsync: bool) -> io::Result<(Journal, Vec<Record>)> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, valid_len) = scan(&bytes);
        let dropped = bytes.len() as u64 - valid_len;
        if dropped > 0 {
            // Drop the torn tail so the next append starts a well-formed
            // line.
            let file = OpenOptions::new().write(true).open(path)?;
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        let stats = JournalStats {
            entries: records.len() as u64,
            bytes: valid_len,
            compacted_entries: records.len() as u64,
            compacted_bytes: valid_len,
            torn_bytes_dropped: dropped,
        };
        Ok((
            Journal {
                path: path.to_path_buf(),
                fsync,
                inner: Mutex::new(JournalInner { file, stats }),
            },
            records,
        ))
    }

    /// Replays the journal at `path` without opening it for writing and
    /// without truncating a torn tail — the read-only path behind
    /// `transyt store ls`, safe to run next to a live server. Returns the
    /// valid records and the number of trailing bytes that failed to decode.
    ///
    /// # Errors
    ///
    /// Filesystem errors reading the file (a missing journal is empty, not
    /// an error).
    pub fn replay(path: &Path) -> io::Result<(Vec<Record>, u64)> {
        let bytes = match fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let (records, valid_len) = scan(&bytes);
        Ok((records, bytes.len() as u64 - valid_len))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalInner> {
        self.inner.lock().expect("journal poisoned")
    }

    /// Appends one record (fsync'd when the journal was opened with fsync).
    ///
    /// # Errors
    ///
    /// Filesystem errors writing or syncing.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        let line = record.encode();
        let mut inner = self.lock();
        inner.file.write_all(line.as_bytes())?;
        if self.fsync {
            inner.file.sync_data()?;
        }
        inner.stats.entries += 1;
        inner.stats.bytes += line.len() as u64;
        Ok(())
    }

    /// Compacts the journal to exactly `records` via an atomic temp-file +
    /// rename rewrite, resetting the size baseline the next
    /// [`should_compact`](Self::should_compact) compares against.
    ///
    /// # Errors
    ///
    /// Filesystem errors writing the replacement file.
    pub fn rewrite(&self, records: &[Record]) -> io::Result<()> {
        let mut content = String::new();
        for record in records {
            content.push_str(&record.encode());
        }
        let mut inner = self.lock();
        crate::fsio::write_atomic(&self.path, content.as_bytes(), self.fsync)?;
        inner.file = OpenOptions::new().append(true).open(&self.path)?;
        inner.stats.entries = records.len() as u64;
        inner.stats.bytes = content.len() as u64;
        inner.stats.compacted_entries = inner.stats.entries;
        inner.stats.compacted_bytes = inner.stats.bytes;
        Ok(())
    }

    /// `true` once the journal has grown past [`COMPACT_MIN_BYTES`] *and*
    /// past 4× its size at the last compaction — the size trigger for a
    /// [`rewrite`](Self::rewrite).
    pub fn should_compact(&self) -> bool {
        let stats = self.lock().stats;
        stats.bytes > COMPACT_MIN_BYTES && stats.bytes > 4 * stats.compacted_bytes.max(1)
    }

    /// Current size counters.
    pub fn stats(&self) -> JournalStats {
        self.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Model {
                hash: "00ff00ff00ff00ff".to_owned(),
            },
            Record::Job {
                id: 0,
                command: "zones".to_owned(),
                model: "00ff00ff00ff00ff".to_owned(),
                params: vec![
                    ("threads".to_owned(), "2".to_owned()),
                    ("trace".to_owned(), "true".to_owned()),
                ],
                prio: "interactive".to_owned(),
            },
            Record::Run { id: 0 },
            Record::Done {
                id: 0,
                result: "a1b2c3d4e5f60718".to_owned(),
            },
            Record::Job {
                id: 1,
                command: "verify".to_owned(),
                model: "00ff00ff00ff00ff".to_owned(),
                params: Vec::new(),
                prio: String::new(),
            },
            Record::Fail {
                id: 1,
                error: "model error: no `property` line & spaces".to_owned(),
            },
            Record::Cancel { id: 2 },
            Record::Timeout { id: 3 },
            Record::Budget {
                id: 4,
                resource: "zone-bytes".to_owned(),
                used: 1_048_640,
                limit: 1_048_576,
            },
            Record::Evict { id: 0 },
        ]
    }

    #[test]
    fn pre_priority_job_lines_still_decode() {
        // The PR-9 wire shape, without the trailing prio token.
        let body = "v1 job 3 verify 00ff00ff00ff00ff threads=2";
        let line = format!("{body} {}", content_hash(body));
        assert_eq!(
            Record::decode(&line),
            Some(Record::Job {
                id: 3,
                command: "verify".to_owned(),
                model: "00ff00ff00ff00ff".to_owned(),
                params: vec![("threads".to_owned(), "2".to_owned())],
                prio: String::new(),
            })
        );
    }

    #[test]
    fn records_encode_to_checksummed_lines_and_round_trip() {
        for record in sample_records() {
            let line = record.encode();
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "{line}");
            let decoded = Record::decode(line.trim_end_matches('\n')).unwrap();
            assert_eq!(decoded, record);
        }
        // A flipped byte fails the checksum.
        let line = Record::Run { id: 7 }.encode();
        let tampered = line.replace("run 7", "run 8");
        assert_eq!(Record::decode(tampered.trim_end_matches('\n')), None);
        assert_eq!(Record::decode(""), None);
        assert_eq!(Record::decode("v1 run"), None);
    }

    #[test]
    fn open_replays_appends_and_truncates_torn_tails() {
        let dir = crate::test_dir("journal");
        let path = dir.join("journal.log");
        {
            let (journal, replayed) = Journal::open(&path, true).unwrap();
            assert!(replayed.is_empty());
            for record in sample_records() {
                journal.append(&record).unwrap();
            }
        }
        // Simulate a torn write: a partial record without checksum/newline.
        let mut bytes = fs::read(&path).unwrap();
        let intact = bytes.len();
        bytes.extend_from_slice(b"v1 done 9 a1b2");
        fs::write(&path, &bytes).unwrap();

        let (journal, replayed) = Journal::open(&path, false).unwrap();
        assert_eq!(replayed, sample_records());
        let stats = journal.stats();
        assert_eq!(stats.torn_bytes_dropped, 14);
        assert_eq!(stats.bytes as usize, intact);
        // The torn tail is physically gone: appends after recovery decode.
        journal.append(&Record::Run { id: 4 }).unwrap();
        drop(journal);
        let (reopened, replayed) = Journal::open(&path, false).unwrap();
        assert_eq!(replayed.len(), sample_records().len() + 1);
        assert_eq!(reopened.stats().torn_bytes_dropped, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_corrupt_line_drops_that_line_and_everything_after() {
        let dir = crate::test_dir("journal-corrupt");
        let path = dir.join("journal.log");
        let good = Record::Run { id: 1 }.encode();
        let bad = "v1 run 2 0000000000000000\n"; // wrong checksum
        let after = Record::Run { id: 3 }.encode();
        fs::write(&path, format!("{good}{bad}{after}")).unwrap();
        let (journal, replayed) = Journal::open(&path, false).unwrap();
        assert_eq!(replayed, vec![Record::Run { id: 1 }]);
        assert_eq!(
            journal.stats().torn_bytes_dropped as usize,
            bad.len() + after.len()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rewrite_compacts_and_resets_the_size_trigger() {
        let dir = crate::test_dir("journal-compact");
        let path = dir.join("journal.log");
        let (journal, _) = Journal::open(&path, false).unwrap();
        let filler = Record::Fail {
            id: 0,
            error: "x".repeat(200),
        };
        while !journal.should_compact() {
            journal.append(&filler).unwrap();
        }
        assert!(journal.stats().bytes > COMPACT_MIN_BYTES);
        journal.rewrite(&[Record::Run { id: 0 }]).unwrap();
        assert!(!journal.should_compact());
        let stats = journal.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.compacted_bytes, stats.bytes);
        // The rewritten file replays to exactly the compacted records, and
        // post-compaction appends land after them.
        journal.append(&Record::Cancel { id: 0 }).unwrap();
        drop(journal);
        let (_, replayed) = Journal::open(&path, false).unwrap();
        assert_eq!(
            replayed,
            vec![Record::Run { id: 0 }, Record::Cancel { id: 0 }]
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
