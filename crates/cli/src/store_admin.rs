//! `transyt store` — offline administration of a `serve --data-dir` data
//! dir.
//!
//! * `ls` uses the read-only [`Store::inspect`] path: it never writes, never
//!   truncates a torn journal tail, and is therefore safe to run next to a
//!   live server owning the same directory.
//! * `gc` opens the store read-write (truncating a torn tail, rewriting the
//!   journal) and must only run while no server owns the directory; it
//!   applies the same LRU-by-age + TTL rules the server applies at startup.

use std::time::Duration;

use transyt_store::{RecoveredJob, RecoveredStatus, Store};

use crate::commands::CliError;

fn status_word(job: &RecoveredJob) -> &'static str {
    match job.status {
        RecoveredStatus::Queued => "queued",
        RecoveredStatus::Running => "running",
        RecoveredStatus::Done { .. } => {
            if job.evicted {
                "done (evicted)"
            } else {
                "done"
            }
        }
        RecoveredStatus::Failed => "failed",
        RecoveredStatus::Cancelled => "cancelled",
        RecoveredStatus::TimedOut => "timed_out",
        RecoveredStatus::BudgetExceeded { .. } => "budget_exceeded",
    }
}

/// `transyt store ls`: a read-only listing of a data dir — stored models,
/// stored results, the replayed job table and the journal's health.
///
/// # Errors
///
/// [`CliError::Run`] when the directory is missing or the journal is
/// unreadable.
pub fn cmd_ls(data_dir: &str) -> Result<(), CliError> {
    let inspection = Store::inspect(data_dir)
        .map_err(|e| CliError::Run(format!("inspecting {data_dir}: {e}")))?;
    println!("data dir {data_dir}");
    println!(
        "journal: {} entr{}, {} bytes{}",
        inspection.journal_entries,
        if inspection.journal_entries == 1 {
            "y"
        } else {
            "ies"
        },
        inspection.journal_bytes,
        if inspection.torn_bytes > 0 {
            format!(" ({} torn trailing bytes)", inspection.torn_bytes)
        } else {
            String::new()
        },
    );
    println!("models ({}):", inspection.models.len());
    for (hash, bytes) in &inspection.models {
        println!("  {hash}  {bytes} bytes");
    }
    println!("results ({}):", inspection.results.len());
    for (fingerprint, bytes, age) in &inspection.results {
        match age {
            Some(age) => println!("  {fingerprint}  {bytes} bytes  age {}s", age.as_secs()),
            None => println!("  {fingerprint}  {bytes} bytes"),
        }
    }
    println!("jobs ({}):", inspection.jobs.len());
    for job in &inspection.jobs {
        println!(
            "  #{} {} {} @ {}",
            job.id,
            status_word(job),
            job.command,
            job.model
        );
    }
    Ok(())
}

/// `transyt store gc`: offline garbage collection of a data dir. Opens the
/// store read-write (the owning server must be stopped), drops stored
/// results past the cap / TTL plus orphaned files, and compacts the journal.
///
/// # Errors
///
/// [`CliError::Run`] on filesystem failures.
pub fn cmd_gc(
    data_dir: &str,
    keep_results: usize,
    result_ttl: Option<Duration>,
) -> Result<(), CliError> {
    let (store, mut recovery) = Store::open(data_dir, true)
        .map_err(|e| CliError::Run(format!("opening {data_dir}: {e}")))?;
    let report = store
        .gc(&mut recovery, keep_results, result_ttl)
        .map_err(|e| CliError::Run(format!("collecting {data_dir}: {e}")))?;
    for fingerprint in &report.removed {
        println!("removed result {fingerprint}");
    }
    println!(
        "kept {} result{}, journal compacted to {} bytes",
        report.kept,
        if report.kept == 1 { "" } else { "s" },
        report.journal_bytes,
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ls_refuses_a_missing_dir_and_gc_is_callable() {
        let dir =
            std::env::temp_dir().join(format!("transyt-store-admin-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let missing = dir.join("nope");
        assert!(cmd_ls(missing.to_str().unwrap()).is_err());
        std::fs::create_dir_all(&dir).unwrap();
        let dir_str = dir.to_str().unwrap();
        // An empty dir gcs to an empty report and lists cleanly afterwards.
        cmd_gc(dir_str, 4, Some(Duration::from_secs(60))).unwrap();
        cmd_ls(dir_str).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
