//! Server mode: `transyt serve` and the tiny `transyt submit` / `transyt
//! status` client modes.
//!
//! The server crate (`transyt-server`) owns sockets, the job table and the
//! worker pool; models and runs live in the embedded
//! [`transyt_session::Session`] — the same layer the one-shot CLI renders
//! over — so a job submitted over the wire runs through exactly the code
//! path of the one-shot CLI and its result document is byte-identical to
//! `transyt <command> --json` output. (The old `Backend` trait is gone: the
//! session layer *is* the backend now.)

use transyt_server::{client, Server, ServerConfig};

use crate::commands::{CliError, Options};

/// `transyt serve`: bind, print the address, serve until SIGTERM / ctrl-c /
/// `POST /shutdown`.
pub fn cmd_serve(config: &ServerConfig) -> Result<(), CliError> {
    let server =
        Server::bind(config).map_err(|e| CliError::Run(format!("binding {}: {e}", config.addr)))?;
    println!(
        "transyt server listening on {} ({} worker{}, queue depth {}, keeping {} result{})",
        server.local_addr(),
        config.workers,
        if config.workers == 1 { "" } else { "s" },
        config.queue_depth,
        config.keep_results,
        if config.keep_results == 1 { "" } else { "s" },
    );
    if let Some(dir) = &config.data_dir {
        println!("persisting to {dir} (write-ahead journal + content-addressed store)");
    }
    println!("endpoints: POST /models, POST /jobs, GET /jobs/<id>/result (see docs/SERVER.md)");
    server
        .run()
        .map_err(|e| CliError::Run(format!("serving: {e}")))
}

/// [`client::request`] with retries: transient connection failures (refused
/// while a crashed server restarts, resets mid-read) back off exponentially
/// (100ms doubling to a 1s cap, ~30s total) before giving up. Safe for every
/// request `submit` makes — the model upload is content-addressed, job
/// submission dedupes on the server by canonical task key, and polls/fetches
/// are reads — so a retry never changes what the server computes.
fn request_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, String), String> {
    request_retry_headers(addr, method, path, body).map(|(status, _, body)| (status, body))
}

/// [`request_retry`], also returning the response headers (how the submit
/// path reads `Retry-After` off a 429).
#[allow(clippy::type_complexity)]
fn request_retry_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> Result<(u16, Vec<(String, String)>, String), String> {
    let mut backoff = std::time::Duration::from_millis(100);
    let mut attempts = 0u32;
    loop {
        match client::request_with_headers(addr, method, path, body) {
            Ok(response) => return Ok(response),
            Err(error) => {
                attempts += 1;
                if attempts >= 30 {
                    return Err(error);
                }
                if attempts == 1 {
                    eprintln!("note: {error}; retrying");
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(std::time::Duration::from_secs(1));
            }
        }
    }
}

/// `POST /jobs` honoring the admission gate: a `429 Too Many Requests`
/// answer sleeps for the server's `Retry-After` estimate (with ±25%
/// deterministic per-process jitter so a stampede of rejected clients does
/// not re-arrive in lockstep, capped at 10s per attempt) and retries, at
/// most 20 times. Any other status is returned to the caller.
fn submit_with_backoff(server: &str, path: &str) -> Result<String, CliError> {
    const MAX_ATTEMPTS: u32 = 20;
    for attempt in 1..=MAX_ATTEMPTS {
        let (status, headers, body) =
            request_retry_headers(server, "POST", path, None).map_err(CliError::Run)?;
        if status != 429 {
            if status / 100 != 2 {
                let detail = client::json_str_field(&body, "error").unwrap_or(body);
                return Err(CliError::Run(format!(
                    "submitting job: server said {status}: {detail}"
                )));
            }
            return Ok(body);
        }
        if attempt == MAX_ATTEMPTS {
            break;
        }
        let retry_after = client::header(&headers, "retry-after")
            .and_then(|value| value.parse::<u64>().ok())
            .unwrap_or(1)
            .clamp(1, 10);
        let base_ms = retry_after * 1000;
        // 75%..125% of the estimate, spread by pid and attempt (no RNG in
        // the dependency-free workspace; a hash is plenty for desynching).
        let ticks = u64::from(std::process::id())
            .wrapping_mul(2_654_435_761)
            .wrapping_add(u64::from(attempt).wrapping_mul(40_503))
            % 512;
        let sleep_ms = base_ms * 3 / 4 + base_ms * ticks / 1024;
        let queued = client::json_uint_field(&body, "queued").unwrap_or(0);
        eprintln!(
            "server busy ({queued} job{} queued); retrying in {sleep_ms}ms \
             (attempt {attempt}/{MAX_ATTEMPTS})",
            if queued == 1 { "" } else { "s" },
        );
        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
    }
    Err(CliError::Run(format!(
        "server at {server} stayed busy after {MAX_ATTEMPTS} attempts"
    )))
}

/// What `transyt submit` sends: the model file, the command, the options and
/// how to handle the result.
pub struct SubmitArgs {
    /// Server address (`HOST:PORT`).
    pub server: String,
    /// Path of the model file to upload.
    pub file: String,
    /// The job command: `verify`, `reach` or `zones`.
    pub command: String,
    /// The job options (the `cancel` / `progress` fields are ignored —
    /// cancellation of remote jobs goes through `POST /jobs/<id>/cancel`).
    pub options: Options,
    /// Scheduling class (`interactive` / `batch` / `background`); `None`
    /// submits in the server's default class (batch).
    pub priority: Option<String>,
    /// Poll until the job finishes and print its text output.
    pub wait: bool,
    /// Follow the job's live event stream (`GET /jobs/<id>/events`) while
    /// waiting, printing queue positions and exploration progress.
    pub watch: bool,
    /// With `wait`: write the result document (byte-identical to one-shot
    /// `--json` output) to this path.
    pub json_path: Option<String>,
}

fn expect_status(what: &str, response: Result<(u16, String), String>) -> Result<String, CliError> {
    let (status, body) = response.map_err(CliError::Run)?;
    if status / 100 != 2 {
        let detail = client::json_str_field(&body, "error").unwrap_or(body);
        return Err(CliError::Run(format!(
            "{what}: server said {status}: {detail}"
        )));
    }
    Ok(body)
}

/// `transyt submit`: upload the model, enqueue the job, optionally wait for
/// the result.
pub fn cmd_submit(args: &SubmitArgs) -> Result<(), CliError> {
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| CliError::Run(format!("reading {}: {e}", args.file)))?;
    let body = expect_status(
        "uploading model",
        request_retry(&args.server, "POST", "/models", Some(text.as_bytes())),
    )?;
    let hash = client::json_str_field(&body, "hash")
        .ok_or_else(|| CliError::Run(format!("upload response carried no hash: {body}")))?;
    let name = client::json_str_field(&body, "name").unwrap_or_default();

    let mut path = format!(
        "/jobs?model={hash}&command={}",
        transyt_server::http::percent_encode(&args.command)
    );
    let options = &args.options;
    if options.threads != 1 {
        path.push_str(&format!("&threads={}", options.threads));
    }
    if options.subsumption != transyt_session::Subsumption::default() {
        path.push_str(&format!("&subsumption={}", options.subsumption.name()));
    }
    if options.extrapolation != transyt_session::Extrapolation::default() {
        path.push_str(&format!("&extrapolation={}", options.extrapolation.name()));
    }
    if options.bounds != transyt_session::Bounds::default() {
        path.push_str(&format!("&bounds={}", options.bounds.name()));
    }
    if options.trace {
        path.push_str("&trace=true");
    }
    if let Some(limit) = options.limit {
        path.push_str(&format!("&limit={limit}"));
    }
    if let Some(label) = &options.to_label {
        path.push_str(&format!(
            "&to={}",
            transyt_server::http::percent_encode(label)
        ));
    }
    if let Some(timeout) = options.timeout {
        path.push_str(&format!("&timeout={}", timeout.as_secs().max(1)));
    }
    if let Some(max_configs) = options.max_configs {
        path.push_str(&format!("&max-configs={max_configs}"));
    }
    if let Some(max_zone_bytes) = options.max_zone_bytes {
        path.push_str(&format!("&max-zone-bytes={max_zone_bytes}"));
    }
    if let Some(priority) = &args.priority {
        path.push_str(&format!("&priority={priority}"));
    }
    let body = submit_with_backoff(&args.server, &path)?;
    let job = client::json_uint_field(&body, "job")
        .ok_or_else(|| CliError::Run(format!("submission response carried no job id: {body}")))?;
    let priority = client::json_str_field(&body, "priority").unwrap_or_default();
    println!(
        "submitted job {job} ({} {name} @ {hash}, {priority})",
        args.command
    );
    if let Some(position) = client::json_uint_field(&body, "position") {
        println!("queue position {position}");
    }
    if !args.wait {
        println!("poll with: transyt status {job} --server {}", args.server);
        return Ok(());
    }

    if args.watch {
        // Follow the live stream until the server closes it at the job's
        // terminal event; the poll loop below then settles immediately.
        client::stream_events(&args.server, job, |event| {
            match client::json_str_field(event, "type").as_deref() {
                Some("queued") => {
                    if let Some(at) = client::json_uint_field(event, "position") {
                        eprintln!("watch: queued at position {at}");
                    }
                }
                Some("terminal") => {
                    let status = client::json_str_field(event, "status").unwrap_or_default();
                    eprintln!("watch: job {job} is {status}");
                }
                _ => eprintln!("watch: {event}"),
            }
        })
        .map_err(CliError::Run)?;
    }

    let mut recovered = false;
    let status = loop {
        let body = expect_status(
            "polling job",
            request_retry(&args.server, "GET", &format!("/jobs/{job}"), None),
        )?;
        // Durable servers flag jobs replayed from the journal after a
        // restart; surface that to the submitter once the job settles.
        recovered |= client::json_bool_field(&body, "recovered") == Some(true);
        let status = client::json_str_field(&body, "status").unwrap_or_default();
        if matches!(
            status.as_str(),
            "done" | "failed" | "cancelled" | "timed_out" | "budget_exceeded"
        ) {
            break status;
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
    };
    if recovered {
        println!("job {job} was recovered from the server's journal");
    }
    match status.as_str() {
        "done" => {
            let text = expect_status(
                "fetching job text",
                request_retry(&args.server, "GET", &format!("/jobs/{job}/text"), None),
            )?;
            print!("{text}");
            if let Some(path) = &args.json_path {
                // The document itself stays byte-identical to one-shot
                // `--json` output — recovery is reported on stdout and in
                // the status JSON, never spliced into the result.
                let document = expect_status(
                    "fetching job result",
                    request_retry(&args.server, "GET", &format!("/jobs/{job}/result"), None),
                )?;
                std::fs::write(path, document)
                    .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        "cancelled" => {
            println!("job {job} was cancelled");
            Ok(())
        }
        "timed_out" => {
            // The partial text (what the run saw before the deadline) is
            // still fetchable; surface it, then report the timeout.
            if let Ok(text) =
                client::request(&args.server, "GET", &format!("/jobs/{job}/text"), None)
            {
                if text.0 == 200 {
                    print!("{}", text.1);
                }
            }
            Err(CliError::Run(format!("job {job} timed out")))
        }
        "budget_exceeded" => {
            // Same shape as a timeout: partial text if any, then the breach.
            if let Ok(text) =
                client::request(&args.server, "GET", &format!("/jobs/{job}/text"), None)
            {
                if text.0 == 200 {
                    print!("{}", text.1);
                }
            }
            let body = expect_status(
                "reading job",
                request_retry(&args.server, "GET", &format!("/jobs/{job}"), None),
            )?;
            let resource =
                client::json_str_field(&body, "resource").unwrap_or_else(|| "resource".to_owned());
            let used = client::json_uint_field(&body, "used").unwrap_or(0);
            let limit = client::json_uint_field(&body, "limit").unwrap_or(0);
            Err(CliError::Run(format!(
                "job {job} exceeded its {resource} budget (used {used}, limit {limit})"
            )))
        }
        _ => {
            let body = expect_status(
                "reading job error",
                client::request(&args.server, "GET", &format!("/jobs/{job}"), None),
            )?;
            let error = client::json_str_field(&body, "error")
                .unwrap_or_else(|| "unknown error".to_owned());
            Err(CliError::Run(format!("job {job} failed: {error}")))
        }
    }
}

/// `transyt status`: print the status document of one job, or the job list.
pub fn cmd_status(server: &str, job: Option<usize>) -> Result<(), CliError> {
    let path = match job {
        Some(id) => format!("/jobs/{id}"),
        None => "/jobs".to_owned(),
    };
    let body = expect_status(
        "fetching status",
        client::request(server, "GET", &path, None),
    )?;
    print!("{body}");
    Ok(())
}
