//! Server mode: the CLI-backed job runner behind `transyt serve`, and the
//! tiny `transyt submit` / `transyt status` client modes.
//!
//! The server crate (`transyt-server`) owns sockets, the model cache and the
//! worker pool; this module plugs the CLI's own parser and [`commands`]
//! layer in as its [`Backend`], so a job submitted over the wire runs
//! through exactly the code path of the one-shot CLI and its result
//! document is byte-identical to `transyt <command> --json` output.
//!
//! [`commands`]: crate::commands

use transyt_server::{client, Backend, JobOutput, JobRequest, ModelInfo, Server, ServerConfig};

use crate::commands::{cmd_reach, cmd_verify, cmd_zones, CliError, Options};
use crate::format::{Model, ModelSource};
use crate::json;

/// The [`Backend`] wiring server jobs onto the CLI's command layer.
pub struct CliBackend;

impl Backend for CliBackend {
    fn validate(&self, text: &str) -> Result<ModelInfo, String> {
        let model = Model::parse(text).map_err(|e| e.to_string())?;
        Ok(ModelInfo {
            name: model.name.clone(),
            kind: match model.source {
                ModelSource::Stg(_) => "stg".to_owned(),
                ModelSource::Tts(_) => "tts".to_owned(),
            },
        })
    }

    fn run(
        &self,
        model_text: &str,
        request: &JobRequest,
        cancel: &transyt_server::CancelToken,
    ) -> Result<JobOutput, String> {
        let model = Model::parse(model_text).map_err(|e| e.to_string())?;
        let options = Options {
            threads: request.threads,
            subsumption: request.subsumption,
            trace: request.trace,
            limit: request.limit,
            to_label: request.to_label.clone(),
            cancel: cancel.clone(),
        };
        let result = match request.command.as_str() {
            "verify" => cmd_verify(&model, &options),
            "reach" => cmd_reach(&model, &options),
            "zones" => cmd_zones(&model, &options),
            other => return Err(format!("unknown command `{other}`")),
        }
        .map_err(|e| e.to_string())?;
        Ok(JobOutput {
            document: json::render_document(&result.json),
            text: result.text,
        })
    }
}

/// `transyt serve`: bind, print the address, serve until SIGTERM / ctrl-c /
/// `POST /shutdown`.
pub fn cmd_serve(addr: &str, workers: usize) -> Result<(), CliError> {
    let config = ServerConfig {
        addr: addr.to_owned(),
        workers,
    };
    let server = Server::bind(&config, Box::new(CliBackend))
        .map_err(|e| CliError::Run(format!("binding {addr}: {e}")))?;
    println!(
        "transyt server listening on {} ({} worker{})",
        server.local_addr(),
        workers,
        if workers == 1 { "" } else { "s" }
    );
    println!("endpoints: POST /models, POST /jobs, GET /jobs/<id>/result (see docs/SERVER.md)");
    server
        .run()
        .map_err(|e| CliError::Run(format!("serving: {e}")))
}

/// What `transyt submit` sends: the model file, the command, the options and
/// how to handle the result.
pub struct SubmitArgs {
    /// Server address (`HOST:PORT`).
    pub server: String,
    /// Path of the model file to upload.
    pub file: String,
    /// The job command: `verify`, `reach` or `zones`.
    pub command: String,
    /// The job options (the `cancel` field is ignored — cancellation of
    /// remote jobs goes through `POST /jobs/<id>/cancel`).
    pub options: Options,
    /// Poll until the job finishes and print its text output.
    pub wait: bool,
    /// With `wait`: write the result document (byte-identical to one-shot
    /// `--json` output) to this path.
    pub json_path: Option<String>,
}

fn expect_status(what: &str, response: Result<(u16, String), String>) -> Result<String, CliError> {
    let (status, body) = response.map_err(CliError::Run)?;
    if status / 100 != 2 {
        let detail = client::json_str_field(&body, "error").unwrap_or(body);
        return Err(CliError::Run(format!(
            "{what}: server said {status}: {detail}"
        )));
    }
    Ok(body)
}

/// `transyt submit`: upload the model, enqueue the job, optionally wait for
/// the result.
pub fn cmd_submit(args: &SubmitArgs) -> Result<(), CliError> {
    let text = std::fs::read_to_string(&args.file)
        .map_err(|e| CliError::Run(format!("reading {}: {e}", args.file)))?;
    let body = expect_status(
        "uploading model",
        client::request(&args.server, "POST", "/models", Some(text.as_bytes())),
    )?;
    let hash = client::json_str_field(&body, "hash")
        .ok_or_else(|| CliError::Run(format!("upload response carried no hash: {body}")))?;
    let name = client::json_str_field(&body, "name").unwrap_or_default();

    let mut path = format!(
        "/jobs?model={hash}&command={}",
        transyt_server::http::percent_encode(&args.command)
    );
    let options = &args.options;
    if options.threads != 1 {
        path.push_str(&format!("&threads={}", options.threads));
    }
    if !options.subsumption {
        path.push_str("&subsumption=off");
    }
    if options.trace {
        path.push_str("&trace=true");
    }
    if let Some(limit) = options.limit {
        path.push_str(&format!("&limit={limit}"));
    }
    if let Some(label) = &options.to_label {
        path.push_str(&format!(
            "&to={}",
            transyt_server::http::percent_encode(label)
        ));
    }
    let body = expect_status(
        "submitting job",
        client::request(&args.server, "POST", &path, None),
    )?;
    let job = client::json_uint_field(&body, "job")
        .ok_or_else(|| CliError::Run(format!("submission response carried no job id: {body}")))?;
    println!("submitted job {job} ({} {name} @ {hash})", args.command);
    if !args.wait {
        println!("poll with: transyt status {job} --server {}", args.server);
        return Ok(());
    }

    let status = loop {
        let body = expect_status(
            "polling job",
            client::request(&args.server, "GET", &format!("/jobs/{job}"), None),
        )?;
        let status = client::json_str_field(&body, "status").unwrap_or_default();
        if matches!(status.as_str(), "done" | "failed" | "cancelled") {
            break status;
        }
        std::thread::sleep(std::time::Duration::from_millis(150));
    };
    match status.as_str() {
        "done" => {
            let text = expect_status(
                "fetching job text",
                client::request(&args.server, "GET", &format!("/jobs/{job}/text"), None),
            )?;
            print!("{text}");
            if let Some(path) = &args.json_path {
                let document = expect_status(
                    "fetching job result",
                    client::request(&args.server, "GET", &format!("/jobs/{job}/result"), None),
                )?;
                std::fs::write(path, document)
                    .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        "cancelled" => {
            println!("job {job} was cancelled");
            Ok(())
        }
        _ => {
            let body = expect_status(
                "reading job error",
                client::request(&args.server, "GET", &format!("/jobs/{job}"), None),
            )?;
            let error = client::json_str_field(&body, "error")
                .unwrap_or_else(|| "unknown error".to_owned());
            Err(CliError::Run(format!("job {job} failed: {error}")))
        }
    }
}

/// `transyt status`: print the status document of one job, or the job list.
pub fn cmd_status(server: &str, job: Option<usize>) -> Result<(), CliError> {
    let path = match job {
        Some(id) => format!("/jobs/{id}"),
        None => "/jobs".to_owned(),
    };
    let body = expect_status(
        "fetching status",
        client::request(server, "GET", &path, None),
    )?;
    print!("{body}");
    Ok(())
}
