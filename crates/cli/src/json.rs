//! The machine-readable JSON documents of the `transyt` tool, shared by the
//! one-shot CLI (`--json PATH`) and the verification server (`transyt
//! serve`).
//!
//! Both front ends go through these builders — and through
//! [`render_document`] for the final bytes — so a document fetched from a
//! server job is **byte-identical** to the file the CLI writes for the same
//! model and options (the property the server integration tests and the CI
//! `server` job diff for).

use bench::json::Value;
use dbm::ZoneOutcome;
use stg::ReachReport;
use transyt::Verdict;
use tts::Bound;

use crate::commands::RenderedTrace;

/// Renders a document exactly as the CLI writes it to a `--json` file (and
/// as the server serves it): compact JSON plus one trailing newline.
pub fn render_document(doc: &Value) -> String {
    doc.render() + "\n"
}

/// The document of a rendered timed trace (`"trace"` field of verify / zones
/// documents).
pub fn trace_document(trace: &RenderedTrace) -> Value {
    let steps: Vec<Value> = trace
        .steps
        .iter()
        .map(|step| {
            let mut doc = Value::object()
                .field("event", step.event.as_str())
                .field("state", step.state.as_str());
            if let Some(window) = step.window {
                doc = doc
                    .field("earliest", window.earliest.as_i64().max(0) as usize)
                    .field(
                        "latest",
                        match window.latest {
                            Bound::Finite(t) => Value::UInt(t.as_i64().max(0) as u128),
                            Bound::Infinite => Value::Str("inf".to_owned()),
                        },
                    );
            }
            doc
        })
        .collect();
    Value::object()
        .field("kind", trace.kind)
        .field("start", trace.start.as_str())
        .field("end", trace.end.as_str())
        .field("steps", steps)
}

/// The document of a `transyt verify` run.
pub fn verify_document(model: &str, verdict: &Verdict, trace: Option<&RenderedTrace>) -> Value {
    let report = verdict.report();
    let constraints: Vec<Value> = report
        .constraints
        .iter()
        .map(|c| Value::Str(c.to_string()))
        .collect();
    let mut doc = Value::object()
        .field(
            "verdict",
            match verdict {
                Verdict::Verified(_) => "verified",
                Verdict::Failed { .. } => "failed",
                Verdict::Inconclusive { .. } => "inconclusive",
            },
        )
        .field("refinements", report.refinements)
        .field("explored_states", report.explored_states)
        .field("constraints", constraints)
        .field("model", model);
    if let Some(trace) = trace {
        doc = doc.field("trace", trace_document(trace));
    }
    doc
}

/// Outcome of the goal search of a `transyt reach` run, for
/// [`reach_document`].
pub enum ReachGoal {
    /// No `--to` / `--trace` goal was given.
    None,
    /// A witness path was found; the fired labels in order.
    Found(Vec<String>),
    /// No reachable marking satisfies the goal.
    NotFound,
}

/// The document of a `transyt reach` run.
pub fn reach_document(model: &str, report: &ReachReport, states: usize, goal: &ReachGoal) -> Value {
    let doc = Value::object()
        .field("model", model)
        .field("markings", report.markings)
        .field("firings", report.firings)
        .field("deadlock_markings", report.deadlock_states.len())
        .field("states", states);
    match goal {
        ReachGoal::None => doc,
        ReachGoal::Found(labels) => {
            let steps: Vec<Value> = labels.iter().map(|l| Value::Str(l.clone())).collect();
            doc.field("path_found", true).field("path", steps)
        }
        ReachGoal::NotFound => doc
            .field("path_found", false)
            .field("path", Value::Array(Vec::new())),
    }
}

/// The document of a `transyt zones` run.
pub fn zones_document(model: &str, outcome: &ZoneOutcome, trace: Option<&RenderedTrace>) -> Value {
    let mut doc = Value::object().field("model", model);
    doc = match outcome {
        ZoneOutcome::Completed(report) => doc
            .field("configurations", report.configurations)
            .field("subsumed", report.subsumed_configurations)
            .field("reachable_states", report.reachable_states.len())
            .field("violating_states", report.violating_states.len())
            .field("deadlock_states", report.deadlock_states.len())
            .field("completed", true),
        ZoneOutcome::LimitExceeded { explored, subsumed } => doc
            .field("configurations", *explored)
            .field("subsumed", *subsumed)
            .field("completed", false),
        ZoneOutcome::Cancelled { explored, subsumed } => doc
            .field("configurations", *explored)
            .field("subsumed", *subsumed)
            .field("completed", false)
            .field("cancelled", true),
    };
    if let Some(trace) = trace {
        doc = doc.field("trace", trace_document(trace));
    }
    doc
}

/// The document of a `transyt table1` run.
pub fn table1_document(threads: usize, report: &transyt::ProofReport) -> Value {
    let experiments: Vec<Value> = report
        .steps()
        .iter()
        .map(|step| {
            let r = step.verdict.report();
            Value::object()
                .field("name", step.name.as_str())
                .field("verified", step.verdict.is_verified())
                .field("refinements", r.refinements)
                .field("constraints", r.constraints.len())
                .field("explored_states", r.explored_states)
                .field("millis", step.elapsed.as_millis())
        })
        .collect();
    Value::object()
        .field("benchmark", "table1")
        .field("threads", threads)
        .field("all_verified", report.all_verified())
        .field("total_refinements", report.total_refinements())
        .field("experiments", experiments)
}
