//! The machine-readable JSON documents of the `transyt` tool.
//!
//! The task documents (verify / reach / zones, including traces) moved into
//! [`transyt_session::render`] so the CLI, the server and embedders share
//! one canonical rendering — they are re-exported here so existing callers
//! keep working. Only [`table1_document`] is CLI-specific (the Table 1
//! reproduction is an experiment suite, not a session task).

pub use transyt_session::render::{
    reach_document, render_document, trace_document, verify_document, zones_document, ReachGoal,
};

use bench::json::Value;

/// The document of a `transyt table1` run.
pub fn table1_document(threads: usize, report: &transyt::ProofReport) -> Value {
    let experiments: Vec<Value> = report
        .steps()
        .iter()
        .map(|step| {
            let r = step.verdict.report();
            Value::object()
                .field("name", step.name.as_str())
                .field("verified", step.verdict.is_verified())
                .field("refinements", r.refinements)
                .field("constraints", r.constraints.len())
                .field("explored_states", r.explored_states)
                .field("millis", step.elapsed.as_millis())
        })
        .collect();
    Value::object()
        .field("benchmark", "table1")
        .field("threads", threads)
        .field("all_verified", report.all_verified())
        .field("total_refinements", report.total_refinements())
        .field("experiments", experiments)
}
