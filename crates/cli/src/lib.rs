//! `transyt-cli` — the command-line front end of the TRANSYT reproduction.
//!
//! The paper's tool flow is a *tool*: circuits and environments go in as
//! models, and a failed check comes back as a timed error trace the designer
//! can read (the waveform-style diagnostics of Fig. 7/13). This crate is
//! that front door for the workspace:
//!
//! * [`format`](mod@format) — the `.stg` / `.tts` textual model formats
//!   (hand-rolled parser and canonical printer; grammar in
//!   `docs/FILE_FORMATS.md`), re-exported from `transyt-session`, so new
//!   circuits and environments can be fed in without writing Rust.
//! * [`commands`] — the subcommands of the `transyt` binary, a thin
//!   rendering layer over [`transyt_session::Session`]: `verify`
//!   (relative-timing engine with counterexample/witness traces), `reach`
//!   (STG reachability with marking-path witnesses), `zones` (the
//!   conventional zone-based exploration with symbolic timed traces),
//!   `table1` (the paper's Table 1 reproduction) and `export` (the shipped
//!   scenario library). Flags lower into a `TaskSpec` through the same
//!   `TaskSpec::parse` the server's query strings lower through.
//! * [`scenarios`] — the builders behind the `models/` directory: the 1–3
//!   stage IPCMOS pipelines at pulse level, a C-element handshake, a ring
//!   pipeline, the Fig. 1 introductory example and a failing race.
//!
//! Every trace the binary prints is replayable: integration tests walk the
//! printed steps through the model, step by step, to the reported end
//! state, at `--threads 1` and `--threads 4` alike.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub use transyt_session::format;
pub mod json;
pub mod remote;
pub mod scenarios;
pub mod store_admin;
