//! The `transyt` subcommands: verification, reachability, zone exploration,
//! the Table 1 reproduction and scenario export.
//!
//! Every command returns a [`CommandResult`]: the human-readable text the
//! binary prints plus a machine-readable JSON document (written when the
//! user passes `--json PATH`, uploaded as a CI artifact). The functions are
//! plain library code so the integration tests drive them directly and
//! replay the traces they print.

use std::fmt;

use bench::json::Value;
use dbm::{
    find_witness, path_firing_windows, FiringWindow, WitnessGoal, WitnessOutcome,
    ZoneExplorationOptions, ZoneOutcome,
};
use ipcmos::{SimEvent, SimTrace};
use stg::{ExpandOptions, Marking, Stg};
use transyt::{CancelToken, Verdict, VerifyOptions};
use tts::{Bound, EventId, SignalEdge, StateId, Time, TimedTransitionSystem, TransitionSystem};

use crate::format::{Model, ModelSource};
use crate::json::{self, ReachGoal};

/// Options shared by the subcommands (parsed from the command line).
#[derive(Debug, Clone)]
pub struct Options {
    /// Worker threads for every exploration (`--threads`, default 1; any
    /// value produces identical output).
    pub threads: usize,
    /// Zone subsumption (`--subsumption on|off`, default on).
    pub subsumption: bool,
    /// Print a witness / counterexample trace (`--trace`).
    pub trace: bool,
    /// Exploration size limit (`--limit`, default per command).
    pub limit: Option<usize>,
    /// Target label for `reach --to LABEL`.
    pub to_label: Option<String>,
    /// Cooperative cancellation of the command's explorations (used by the
    /// server's job queue; the one-shot CLI leaves the inert default).
    pub cancel: CancelToken,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 1,
            subsumption: true,
            trace: false,
            limit: None,
            to_label: None,
            cancel: CancelToken::default(),
        }
    }
}

/// What a subcommand produced: the text for stdout and the JSON document for
/// `--json`.
pub struct CommandResult {
    /// Human-readable output.
    pub text: String,
    /// Machine-readable document.
    pub json: Value,
}

/// Error surfaced to the user by the binary.
#[derive(Debug)]
pub enum CliError {
    /// The model file could not be parsed or instantiated.
    Model(crate::format::ModelError),
    /// The command line was malformed.
    Usage(String),
    /// A computation failed (expansion limits, experiment errors, I/O).
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Model(e) => write!(f, "model error: {e}"),
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<crate::format::ModelError> for CliError {
    fn from(e: crate::format::ModelError) -> Self {
        CliError::Model(e)
    }
}

/// One step of a rendered timed trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Name of the fired event.
    pub event: String,
    /// Name of the reached state.
    pub state: String,
    /// Absolute firing window (exact for witnesses, path-relative bounds for
    /// counterexamples), if timing information is available.
    pub window: Option<FiringWindow>,
}

/// A rendered timed trace: what `--trace` prints, in structured form so
/// tests can replay it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenderedTrace {
    /// `"counterexample"` (verification failed), `"witness"` (verified), or
    /// `"example-run"` (verdict inconclusive — the run proves nothing).
    pub kind: &'static str,
    /// Name of the start state.
    pub start: String,
    /// The steps, in firing order.
    pub steps: Vec<TraceStep>,
    /// Name of the end state (the violating state for counterexamples).
    pub end: String,
}

impl RenderedTrace {
    fn render(&self, out: &mut String) {
        out.push_str(&format!("{} trace:\n", self.kind));
        if self.kind == "example-run" {
            out.push_str(
                "  (verdict inconclusive — this run exercises the model but proves nothing)\n",
            );
        }
        out.push_str(&format!("  {}\n", self.start));
        for step in &self.steps {
            let window = step.window.map(|w| format!(" @ {w}")).unwrap_or_default();
            out.push_str(&format!("    --{}{window}--> {}\n", step.event, step.state));
        }
        out.push_str(&format!("  end state: {}\n", self.end));
    }

    /// Renders an ASCII waveform of the trace's signal edges (reusing the
    /// Fig. 7 renderer), or `None` when fewer than two steps carry a signal
    /// edge and a firing time.
    pub fn waveform(&self) -> Option<String> {
        let mut signals: Vec<String> = Vec::new();
        let mut events = Vec::new();
        for step in &self.steps {
            let Some(edge) = SignalEdge::parse(&step.event) else {
                continue;
            };
            let Some(window) = step.window else { continue };
            if !signals.iter().any(|s| s == edge.signal()) {
                signals.push(edge.signal().to_owned());
            }
            events.push(SimEvent {
                time: window.earliest,
                event: step.event.clone(),
            });
        }
        if events.len() < 2 {
            return None;
        }
        let trace = SimTrace::from_events(events);
        let names: Vec<&str> = signals.iter().map(String::as_str).collect();
        Some(trace.waveform(&names, &Default::default()))
    }
}

/// A deterministic as-soon-as-possible run of the timed system: every
/// enabled event is scheduled at its lower delay bound, the earliest
/// scheduled event fires (ties broken by event id), and the run stops after
/// `max_events` firings or at a deadlock. The witness `verify --trace`
/// prints for systems that pass verification.
pub fn asap_run(timed: &TimedTransitionSystem, max_events: usize) -> Vec<(EventId, StateId, Time)> {
    let ts = timed.underlying();
    let mut state = ts.initial_states()[0];
    let mut now = Time::ZERO;
    let mut enabled_since: Vec<(EventId, Time)> =
        ts.enabled(state).into_iter().map(|e| (e, now)).collect();
    let mut steps = Vec::new();
    for _ in 0..max_events {
        let Some((fire_time, event)) = enabled_since
            .iter()
            .map(|&(event, since)| (since + timed.delay(event).lower(), event))
            .min()
        else {
            break;
        };
        now = now.max(fire_time);
        let Some(&target) = ts.successors(state, event).first() else {
            break;
        };
        steps.push((event, target, now));
        let previously_enabled = ts.enabled(state);
        state = target;
        let now_enabled = ts.enabled(state);
        enabled_since.retain(|&(e, _)| now_enabled.contains(&e));
        for &e in &now_enabled {
            let fresh = e == event || !previously_enabled.contains(&e);
            if fresh {
                enabled_since.retain(|&(other, _)| other != e);
                enabled_since.push((e, now));
            } else if !enabled_since.iter().any(|&(other, _)| other == e) {
                enabled_since.push((e, now));
            }
        }
        enabled_since.sort_by_key(|&(e, _)| e);
    }
    steps
}

/// `transyt verify FILE`: run the relative-timing engine on the model's
/// property and (with `--trace`) print a timed counterexample or witness.
pub fn cmd_verify(model: &Model, options: &Options) -> Result<CommandResult, CliError> {
    let timed = model.timed_system()?;
    let property = model.property();
    let verify_options = VerifyOptions {
        threads: options.threads,
        cancel: options.cancel.clone(),
        ..VerifyOptions::default()
    };
    let verdict = transyt::verify(&timed, &property, &verify_options);

    let mut text = String::new();
    text.push_str(&format!("model: {} ({})\n", model.name, timed.underlying()));
    if model.property.is_empty() {
        text.push_str("note: the model declares no `property` directive; nothing to check\n");
    }
    text.push_str(&format!("{verdict}\n"));
    text.push_str("relative-timing constraints:\n");
    text.push_str(&format!("{}\n", verdict.report().constraint_listing()));

    let rendered = options.trace.then(|| trace_of_verdict(&verdict, &timed));
    if let Some(rendered) = &rendered {
        rendered.render(&mut text);
        if let Some(waveform) = rendered.waveform() {
            text.push_str("waveform (earliest firing times):\n");
            text.push_str(&waveform);
        }
    }
    let json = json::verify_document(model.name.as_str(), &verdict, rendered.as_ref());
    Ok(CommandResult { text, json })
}

/// The trace `verify --trace` prints: the engine's counterexample when
/// verification failed (annotated with firing windows by replaying the path
/// through the zone semantics), a deterministic ASAP witness run when it
/// succeeded, and an `example-run` (explicitly *not* a witness — nothing was
/// proved) when the verdict is inconclusive.
pub fn trace_of_verdict(verdict: &Verdict, timed: &TimedTransitionSystem) -> RenderedTrace {
    let ts = timed.underlying();
    match verdict {
        Verdict::Failed { counterexample, .. } => {
            let trace = &counterexample.trace;
            let windows = path_firing_windows(timed, trace.start(), trace.steps());
            let steps = trace
                .steps()
                .iter()
                .enumerate()
                .map(|(i, &(event, target))| TraceStep {
                    event: ts.alphabet().name(event).to_owned(),
                    state: ts.state_name(target).to_owned(),
                    window: windows.as_ref().map(|w| w[i]),
                })
                .collect();
            RenderedTrace {
                kind: "counterexample",
                start: ts.state_name(trace.start()).to_owned(),
                steps,
                end: ts.state_name(trace.end_state()).to_owned(),
            }
        }
        _ => {
            let run = asap_run(timed, 40);
            let start = ts.initial_states()[0];
            let end = run.last().map_or(start, |&(_, state, _)| state);
            let steps = run
                .into_iter()
                .map(|(event, state, time)| TraceStep {
                    event: ts.alphabet().name(event).to_owned(),
                    state: ts.state_name(state).to_owned(),
                    window: Some(FiringWindow {
                        earliest: time,
                        latest: Bound::Finite(time),
                    }),
                })
                .collect();
            RenderedTrace {
                // An inconclusive verdict proved nothing: label the run so
                // neither a reader nor a JSON consumer mistakes it for a
                // certificate.
                kind: if matches!(verdict, Verdict::Verified(_)) {
                    "witness"
                } else {
                    "example-run"
                },
                start: ts.state_name(start).to_owned(),
                steps,
                end: ts.state_name(end).to_owned(),
            }
        }
    }
}

fn marking_name(net: &Stg, marking: &Marking) -> String {
    let tokens: Vec<String> = marking
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t > 0)
        .map(|(i, &t)| {
            let name = net.place_name(stg::PlaceId::from_index(i));
            if t == 1 {
                name.to_owned()
            } else {
                format!("{name}*{t}")
            }
        })
        .collect();
    format!("{{{}}}", tokens.join(", "))
}

/// `transyt reach FILE`: expand the net's reachability graph; with `--to
/// LABEL` print a witness firing sequence to the first marking enabling the
/// label, with `--trace` a path to the first deadlock.
pub fn cmd_reach(model: &Model, options: &Options) -> Result<CommandResult, CliError> {
    let ModelSource::Stg(net) = &model.source else {
        return Err(CliError::Usage(
            "`reach` needs an .stg model (a .tts file already is a state graph)".to_owned(),
        ));
    };
    let expand_options = ExpandOptions {
        threads: options.threads,
        marking_limit: options.limit.unwrap_or(100_000),
        cancel: options.cancel.clone(),
        ..ExpandOptions::default()
    };
    let (ts, report) = stg::expand_with_report(net, expand_options.clone())
        .map_err(|e| CliError::Run(format!("expanding `{}`: {e}", model.name)))?;

    let mut text = String::new();
    text.push_str(&format!(
        "model: {} ({} places, {} transitions)\n",
        model.name,
        net.place_count(),
        net.transition_count()
    ));
    text.push_str(&format!(
        "reachability graph: {} markings, {} firings, {} deadlock marking(s)\n",
        report.markings,
        report.firings,
        report.deadlock_states.len()
    ));
    let states = ts.state_count();
    let document =
        |goal: &ReachGoal| json::reach_document(model.name.as_str(), &report, states, goal);

    let goal_description;
    let path = if let Some(label) = &options.to_label {
        if options.trace {
            return Err(CliError::Usage(
                "--to already prints a witness path; drop either --to or --trace".to_owned(),
            ));
        }
        if !net.transitions().any(|t| net.label(t) == label) {
            return Err(CliError::Usage(format!(
                "--to names unknown label `{label}`"
            )));
        }
        goal_description = format!("first marking enabling `{label}`");
        stg::find_marking_path(net, expand_options, |marking| {
            net.enabled(marking).iter().any(|&t| net.label(t) == label)
        })
    } else if options.trace {
        goal_description = "first deadlock marking".to_owned();
        stg::find_marking_path(net, expand_options, |marking| {
            net.enabled(marking).is_empty()
        })
    } else {
        let json = document(&ReachGoal::None);
        return Ok(CommandResult { text, json });
    }
    .map_err(|e| CliError::Run(format!("goal search in `{}`: {e}", model.name)))?;

    let goal = match path {
        Some(path) => {
            text.push_str(&format!("path to {goal_description}:\n"));
            text.push_str(&format!("  {}\n", marking_name(net, &path.start)));
            for (t, marking) in &path.steps {
                text.push_str(&format!(
                    "    --{}--> {}\n",
                    net.label(*t),
                    marking_name(net, marking)
                ));
            }
            text.push_str(&format!(
                "  end marking: {}\n",
                marking_name(net, path.end())
            ));
            ReachGoal::Found(path.labels(net).into_iter().map(str::to_owned).collect())
        }
        None => {
            text.push_str(&format!(
                "no reachable marking matches: {goal_description}\n"
            ));
            ReachGoal::NotFound
        }
    };
    let json = document(&goal);
    Ok(CommandResult { text, json })
}

/// `transyt zones FILE`: the conventional zone-based timed exploration, with
/// `--trace` a symbolic timed witness to the first violating (or, lacking
/// marked states, deadlocked) state.
pub fn cmd_zones(model: &Model, options: &Options) -> Result<CommandResult, CliError> {
    let timed = model.timed_system()?;
    // The default limit is deliberately lower than the library default: the
    // zone graph blows up with pipeline depth (the paper's motivation), and
    // an interactive tool should abort early; raise it with `--limit`.
    let zone_options = ZoneExplorationOptions {
        threads: options.threads,
        subsumption: options.subsumption,
        configuration_limit: options.limit.unwrap_or(50_000),
        cancel: options.cancel.clone(),
    };
    let ts = timed.underlying();

    let mut text = String::new();
    text.push_str(&format!("model: {} ({})\n", model.name, ts));

    let summarise = |outcome: &ZoneOutcome, text: &mut String| match outcome {
        ZoneOutcome::Completed(report) => {
            text.push_str(&format!(
                "timed state space: {} configurations ({} subsumed), {} reachable states, \
                 {} violating, {} deadlocked\n",
                report.configurations,
                report.subsumed_configurations,
                report.reachable_states.len(),
                report.violating_states.len(),
                report.deadlock_states.len()
            ));
        }
        ZoneOutcome::LimitExceeded { explored, subsumed } => {
            text.push_str(&format!(
                "aborted: configuration limit exceeded after {explored} configurations \
                 ({subsumed} subsumed)\n"
            ));
        }
        ZoneOutcome::Cancelled { explored, subsumed } => {
            text.push_str(&format!(
                "cancelled after {explored} configurations ({subsumed} subsumed)\n"
            ));
        }
    };

    if !options.trace {
        let outcome = dbm::explore_timed_with(&timed, zone_options);
        summarise(&outcome, &mut text);
        let json = json::zones_document(model.name.as_str(), &outcome, None);
        return Ok(CommandResult { text, json });
    }

    // With --trace the witness search runs first: when the goal is
    // unreachable it has already explored the whole space and carries the
    // exact report, so the summary comes for free; only a found witness
    // (which halts the search early) needs the separate full exploration.
    let goal = if ts.has_marked_states() {
        WitnessGoal::Violation
    } else {
        WitnessGoal::Deadlock
    };
    let goal_name = match goal {
        WitnessGoal::Violation => "violating state",
        WitnessGoal::Deadlock => "deadlock state",
    };
    let (outcome, rendered) = match find_witness(&timed, zone_options.clone(), goal) {
        WitnessOutcome::Found(trace) => {
            let outcome = dbm::explore_timed_with(&timed, zone_options);
            summarise(&outcome, &mut text);
            let windows = trace.firing_windows(&timed).unwrap_or_default();
            text.push_str(&format!("symbolic timed trace to the first {goal_name}:\n"));
            let (start, _) = trace.start();
            text.push_str(&format!("  {}\n", ts.state_name(start)));
            let mut rendered_steps = Vec::new();
            for (i, (event, state, zone)) in trace.steps().iter().enumerate() {
                let window = windows.get(i).copied();
                let clock = event.index() + 1;
                let entry_lower = zone.lower_bound(clock);
                let entry_upper = zone.upper_bound(clock);
                let entry = match entry_upper {
                    Some(u) => format!("[{entry_lower}, {u}]"),
                    None => format!("[{entry_lower}, inf)"),
                };
                let window_text = window.map(|w| format!(" @ {w}")).unwrap_or_default();
                text.push_str(&format!(
                    "    --{}{window_text}--> {}  (clock of {} on entry: {entry})\n",
                    ts.alphabet().name(*event),
                    ts.state_name(*state),
                    ts.alphabet().name(*event),
                ));
                rendered_steps.push(TraceStep {
                    event: ts.alphabet().name(*event).to_owned(),
                    state: ts.state_name(*state).to_owned(),
                    window,
                });
            }
            text.push_str(&format!(
                "  end state: {}\n",
                ts.state_name(trace.end_state())
            ));
            let rendered = RenderedTrace {
                kind: "witness",
                start: ts.state_name(start).to_owned(),
                steps: rendered_steps,
                end: ts.state_name(trace.end_state()).to_owned(),
            };
            if let Some(waveform) = rendered.waveform() {
                text.push_str("waveform (earliest firing times):\n");
                text.push_str(&waveform);
            }
            (outcome, Some(rendered))
        }
        WitnessOutcome::Unreachable(report) => {
            let outcome = ZoneOutcome::Completed(report);
            summarise(&outcome, &mut text);
            text.push_str(&format!("no {goal_name} is timed-reachable\n"));
            (outcome, None)
        }
        WitnessOutcome::LimitExceeded { explored, subsumed } => {
            let outcome = ZoneOutcome::LimitExceeded { explored, subsumed };
            summarise(&outcome, &mut text);
            text.push_str(&format!(
                "witness search aborted after {explored} configurations\n"
            ));
            (outcome, None)
        }
        WitnessOutcome::Cancelled { explored, subsumed } => {
            let outcome = ZoneOutcome::Cancelled { explored, subsumed };
            summarise(&outcome, &mut text);
            text.push_str(&format!(
                "witness search cancelled after {explored} configurations\n"
            ));
            (outcome, None)
        }
    };
    let json = json::zones_document(model.name.as_str(), &outcome, rendered.as_ref());
    Ok(CommandResult { text, json })
}

/// `transyt table1`: the five Table 1 obligations of the paper (hard-wired
/// IPCMOS models), matching the `table1_report` bench binary.
pub fn cmd_table1(options: &Options) -> Result<CommandResult, CliError> {
    let verify_options = VerifyOptions {
        threads: options.threads,
        cancel: options.cancel.clone(),
        ..VerifyOptions::default()
    };
    let report = ipcmos::table_1_with(&verify_options)
        .map_err(|e| CliError::Run(format!("table 1: {e}")))?;
    let mut text = String::new();
    text.push_str("Table 1 (DATE 2002 IPCMOS case study)\n");
    text.push_str(&format!("{report}"));
    if report.all_verified() {
        text.push_str("all five obligations verified\n");
    } else {
        text.push_str("WARNING: not all obligations verified\n");
    }
    let json = json::table1_document(options.threads, &report);
    Ok(CommandResult { text, json })
}

/// Checks that `ts` (the expanded model) and the verification verdict of a
/// rendered trace agree — used by the integration tests to replay what the
/// CLI printed, step by step, to the reported end state.
pub fn replay_rendered(trace: &RenderedTrace, ts: &TransitionSystem) -> Option<String> {
    // Resolve by names: walk the steps, requiring a transition with the
    // step's event name into a state with the step's state name.
    let mut current = ts.states().find(|&s| ts.state_name(s) == trace.start)?;
    for step in &trace.steps {
        let next = ts
            .transitions_from(current)
            .iter()
            .find(|&&(event, target)| {
                ts.alphabet().name(event) == step.event && ts.state_name(target) == step.state
            })
            .map(|&(_, target)| target)?;
        current = next;
    }
    let end = ts.state_name(current).to_owned();
    if end == trace.end {
        Some(end)
    } else {
        None
    }
}
