//! The `transyt` subcommands: a thin rendering layer over
//! [`transyt_session::Session`].
//!
//! Every command returns a [`CommandResult`]: the human-readable text the
//! binary prints plus a machine-readable JSON document (written when the
//! user passes `--json PATH`, uploaded as a CI artifact). The actual
//! execution — and the canonical renderings — live in `transyt-session`, so
//! the one-shot CLI, the server and embedders all run through exactly one
//! implementation; these functions only intern the model, lower [`Options`]
//! into a [`TaskSpec`] and unpack the shared [`TaskResult`].
//!
//! [`TaskResult`]: transyt_session::TaskResult

use std::fmt;
use std::time::Duration;

use bench::json::Value;
use transyt_session::{
    render, Completion, RunControl, Session, SessionError, TaskCommand, TaskSpec,
};
use transyt_session::{Bounds, CancelToken, Extrapolation, ProgressSink, Subsumption};

use crate::format::Model;
use crate::json;

// Re-exported from the session layer for embedders and the integration
// tests that replay printed traces (these types used to be defined here).
pub use transyt_session::{asap_run, replay_rendered, trace_of_verdict, RenderedTrace, TraceStep};

/// Options shared by the subcommands (parsed from the command line).
#[derive(Debug, Clone)]
pub struct Options {
    /// Worker threads for every exploration (`--threads`, default 1; any
    /// value produces identical output).
    pub threads: usize,
    /// Zone subsumption policy (`--subsumption exact|inclusion|alu`,
    /// default `alu`).
    pub subsumption: Subsumption,
    /// Zone abstraction mode (`--extrapolation none|lu|lu-active`, default
    /// `lu-active`).
    pub extrapolation: Extrapolation,
    /// LU bound vectors of the zone abstraction (`--bounds global|local`,
    /// default `local`).
    pub bounds: Bounds,
    /// Print a witness / counterexample trace (`--trace`).
    pub trace: bool,
    /// Exploration size limit (`--limit`, default per command).
    pub limit: Option<usize>,
    /// Target label for `reach --to LABEL`.
    pub to_label: Option<String>,
    /// Wall-clock deadline (`--timeout SECS`): when it expires the run is
    /// cancelled and reported as timed out.
    pub timeout: Option<Duration>,
    /// Configuration budget (`--max-configs N`): the run is cancelled
    /// deterministically once it expands more than `N` configurations.
    pub max_configs: Option<usize>,
    /// Zone-memory budget in arena bytes (`--max-zone-bytes N`).
    pub max_zone_bytes: Option<usize>,
    /// Cooperative cancellation of the command's explorations (the one-shot
    /// CLI leaves the inert default).
    pub cancel: CancelToken,
    /// Progress events of the command's explorations (`--progress` wires a
    /// stderr printer; default inert).
    pub progress: ProgressSink,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            threads: 1,
            subsumption: Subsumption::default(),
            extrapolation: Extrapolation::default(),
            bounds: Bounds::default(),
            trace: false,
            limit: None,
            to_label: None,
            timeout: None,
            max_configs: None,
            max_zone_bytes: None,
            cancel: CancelToken::default(),
            progress: ProgressSink::default(),
        }
    }
}

impl Options {
    /// The options of `spec`, with inert cancellation and progress.
    pub fn from_spec(spec: &TaskSpec) -> Options {
        Options {
            threads: spec.threads,
            subsumption: spec.subsumption,
            extrapolation: spec.extrapolation,
            bounds: spec.bounds,
            trace: spec.trace,
            limit: spec.limit,
            to_label: spec.to_label.clone(),
            timeout: spec.deadline,
            max_configs: spec.max_configs,
            max_zone_bytes: spec.max_zone_bytes,
            cancel: CancelToken::default(),
            progress: ProgressSink::default(),
        }
    }

    /// Lowers these options into a [`TaskSpec`] for `command` against the
    /// interned model `hash`.
    pub fn to_spec(&self, command: TaskCommand, hash: &str) -> TaskSpec {
        TaskSpec {
            model: hash.to_owned(),
            command,
            threads: self.threads,
            subsumption: self.subsumption,
            extrapolation: self.extrapolation,
            bounds: self.bounds,
            trace: self.trace,
            limit: self.limit,
            to_label: self.to_label.clone(),
            deadline: self.timeout,
            max_configs: self.max_configs,
            max_zone_bytes: self.max_zone_bytes,
        }
    }
}

/// What a subcommand produced: the text for stdout and the JSON document for
/// `--json`.
pub struct CommandResult {
    /// Human-readable output.
    pub text: String,
    /// Machine-readable document.
    pub json: Value,
}

/// Error surfaced to the user by the binary.
#[derive(Debug)]
pub enum CliError {
    /// The model file could not be parsed or instantiated.
    Model(crate::format::ModelError),
    /// The command line was malformed.
    Usage(String),
    /// A computation failed (expansion limits, experiment errors, I/O).
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Model(e) => write!(f, "model error: {e}"),
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Run(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<crate::format::ModelError> for CliError {
    fn from(e: crate::format::ModelError) -> Self {
        CliError::Model(e)
    }
}

impl From<SessionError> for CliError {
    fn from(e: SessionError) -> Self {
        match e {
            SessionError::Model(e) => CliError::Model(e),
            SessionError::Spec(msg) => CliError::Usage(msg),
            SessionError::Run(msg) => CliError::Run(msg),
            SessionError::Cancelled => CliError::Run("run cancelled".to_owned()),
            SessionError::UnknownModel(hash) => {
                CliError::Run(format!("unknown model hash `{hash}`"))
            }
            SessionError::Panicked => CliError::Run("job panicked".to_owned()),
        }
    }
}

/// Runs one session task against `model` and unpacks the result into the
/// CLI's shape.
fn run_command(
    model: &Model,
    command: TaskCommand,
    options: &Options,
) -> Result<CommandResult, CliError> {
    let session = Session::new();
    let cached = session.insert_model(model.clone());
    let spec = options.to_spec(command, &cached.hash);
    let control = RunControl {
        cancel: options.cancel.clone(),
        progress: options.progress.clone(),
    };
    let Completion::Finished(result) = session.run_task(&spec, control) else {
        unreachable!("a one-shot command executes its own run and never detaches");
    };
    match &result.outcome {
        Ok(outcome) => Ok(CommandResult {
            text: result.text.clone(),
            json: render::document(outcome),
        }),
        Err(error) => Err(error.clone().into()),
    }
}

/// `transyt verify FILE`: run the relative-timing engine on the model's
/// property and (with `--trace`) print a timed counterexample or witness.
pub fn cmd_verify(model: &Model, options: &Options) -> Result<CommandResult, CliError> {
    run_command(model, TaskCommand::Verify, options)
}

/// `transyt reach FILE`: expand the net's reachability graph; with `--to
/// LABEL` print a witness firing sequence to the first marking enabling the
/// label, with `--trace` a path to the first deadlock.
pub fn cmd_reach(model: &Model, options: &Options) -> Result<CommandResult, CliError> {
    run_command(model, TaskCommand::Reach, options)
}

/// `transyt zones FILE`: the conventional zone-based timed exploration, with
/// `--trace` a symbolic timed witness to the first violating (or, lacking
/// marked states, deadlocked) state.
pub fn cmd_zones(model: &Model, options: &Options) -> Result<CommandResult, CliError> {
    run_command(model, TaskCommand::Zones, options)
}

/// `transyt table1`: the five Table 1 obligations of the paper (hard-wired
/// IPCMOS models), matching the `table1_report` bench binary. Not a session
/// task — it runs the `ipcmos` experiment suite, not a model file.
pub fn cmd_table1(options: &Options) -> Result<CommandResult, CliError> {
    let verify_options = transyt::VerifyOptions {
        spec: transyt::ExploreSpec {
            threads: options.threads,
            cancel: options.cancel.clone(),
            progress: options.progress.clone(),
            ..transyt::ExploreSpec::default()
        },
        ..transyt::VerifyOptions::default()
    };
    let report = ipcmos::table_1_with(&verify_options)
        .map_err(|e| CliError::Run(format!("table 1: {e}")))?;
    let mut text = String::new();
    text.push_str("Table 1 (DATE 2002 IPCMOS case study)\n");
    text.push_str(&format!("{report}"));
    if report.all_verified() {
        text.push_str("all five obligations verified\n");
    } else {
        text.push_str("WARNING: not all obligations verified\n");
    }
    let json = json::table1_document(options.threads, &report);
    Ok(CommandResult { text, json })
}
