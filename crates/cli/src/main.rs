//! The `transyt` binary: argument parsing and dispatch to
//! [`transyt_cli::commands`].

use std::process::ExitCode;

use transyt_cli::commands::{
    cmd_reach, cmd_table1, cmd_verify, cmd_zones, CliError, CommandResult, Options,
};
use transyt_cli::format::Model;
use transyt_cli::remote::{self, SubmitArgs};
use transyt_cli::scenarios;

const USAGE: &str = "\
transyt — relative-timing verification of timed circuits (DATE 2002 reproduction)

USAGE:
    transyt verify FILE [--threads N] [--trace] [--json PATH]
    transyt reach  FILE [--threads N] [--trace] [--to LABEL] [--limit N] [--json PATH]
    transyt zones  FILE [--threads N] [--subsumption on|off] [--trace] [--limit N] [--json PATH]
    transyt table1      [--threads N] [--json PATH]
    transyt export NAME [--out PATH]     # or: transyt export --list / --all --dir DIR
    transyt serve       [--addr HOST:PORT] [--workers N]
    transyt submit FILE --server HOST:PORT [--command verify|reach|zones] [--wait]
                        [--threads N] [--subsumption on|off] [--trace] [--limit N]
                        [--to LABEL] [--json PATH]
    transyt status [JOBID] --server HOST:PORT

FILE is a textual model in the .stg or .tts format (see docs/FILE_FORMATS.md;
shipped examples live in models/). Every exploration accepts --threads N and
produces identical output for every thread count. `serve` runs the long-lived
verification server (model cache + job queue; docs/SERVER.md); `submit` and
`status` are thin clients for it, and `submit --wait --json PATH` writes a
document byte-identical to the one-shot command's --json output.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing subcommand".to_owned()));
    };
    match command.as_str() {
        "verify" | "reach" | "zones" => {
            // Only flags the subcommand actually reads are accepted, so an
            // option can never be silently ignored.
            let allowed: &[&str] = match command.as_str() {
                "verify" => &["--threads", "--trace", "--json"],
                "reach" => &["--threads", "--trace", "--to", "--limit", "--json"],
                _ => &["--threads", "--subsumption", "--trace", "--limit", "--json"],
            };
            let (file, options, json_path) = parse_common(&args[1..], command, allowed)?;
            let file = file.ok_or_else(|| {
                CliError::Usage(format!("`{command}` needs a model file argument"))
            })?;
            let text = std::fs::read_to_string(&file)
                .map_err(|e| CliError::Run(format!("reading {file}: {e}")))?;
            let model = Model::parse(&text)?;
            let result = match command.as_str() {
                "verify" => cmd_verify(&model, &options)?,
                "reach" => cmd_reach(&model, &options)?,
                _ => cmd_zones(&model, &options)?,
            };
            emit(result, json_path)
        }
        "table1" => {
            let (file, options, json_path) =
                parse_common(&args[1..], command, &["--threads", "--json"])?;
            if file.is_some() {
                return Err(CliError::Usage("`table1` takes no model file".to_owned()));
            }
            emit(cmd_table1(&options)?, json_path)
        }
        "export" => run_export(&args[1..]),
        "serve" => run_serve(&args[1..]),
        "submit" => run_submit(&args[1..]),
        "status" => run_status(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

fn emit(result: CommandResult, json_path: Option<String>) -> Result<(), CliError> {
    print!("{}", result.text);
    if let Some(path) = json_path {
        // The one canonical rendering — the same bytes the server serves.
        std::fs::write(&path, transyt_cli::json::render_document(&result.json))
            .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

#[allow(clippy::type_complexity)]
fn parse_common(
    args: &[String],
    command: &str,
    allowed: &[&str],
) -> Result<(Option<String>, Options, Option<String>), CliError> {
    let mut file = None;
    let mut options = Options::default();
    let mut json_path = None;
    let mut iter = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs a value"));
    while let Some(arg) = iter.next() {
        if arg.starts_with('-') && !allowed.contains(&arg.as_str()) {
            return Err(CliError::Usage(format!(
                "`{command}` does not accept `{arg}` (allowed: {})",
                allowed.join(", ")
            )));
        }
        match arg.as_str() {
            "--threads" => {
                options.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| missing("--threads"))?;
            }
            "--subsumption" => {
                options.subsumption = match iter.next().map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => {
                        return Err(CliError::Usage(
                            "--subsumption needs `on` or `off`".to_owned(),
                        ))
                    }
                };
            }
            "--trace" => options.trace = true,
            "--limit" => {
                options.limit = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| missing("--limit"))?,
                );
            }
            "--to" => {
                options.to_label = Some(iter.next().ok_or_else(|| missing("--to"))?.clone());
            }
            "--json" => {
                json_path = Some(iter.next().ok_or_else(|| missing("--json"))?.clone());
            }
            other => {
                if file.replace(other.to_owned()).is_some() {
                    return Err(CliError::Usage(format!(
                        "`{command}` takes a single model file"
                    )));
                }
            }
        }
    }
    Ok((file, options, json_path))
}

fn run_serve(args: &[String]) -> Result<(), CliError> {
    let mut addr = "127.0.0.1:7171".to_owned();
    let mut workers = 4usize;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                addr = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--addr needs a value".to_owned()))?
                    .clone();
            }
            "--workers" => {
                workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .ok_or_else(|| {
                        CliError::Usage("--workers needs a positive number".to_owned())
                    })?;
            }
            other => {
                return Err(CliError::Usage(format!(
                    "`serve` does not accept `{other}` (allowed: --addr, --workers)"
                )))
            }
        }
    }
    remote::cmd_serve(&addr, workers)
}

fn run_submit(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut server = None;
    let mut command = "verify".to_owned();
    let mut wait = false;
    let mut json_path = None;
    let mut options = Options::default();
    let mut provided: Vec<&'static str> = Vec::new();
    let mut iter = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs a value"));
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--server" => server = Some(iter.next().ok_or_else(|| missing("--server"))?.clone()),
            "--command" => {
                command = iter.next().ok_or_else(|| missing("--command"))?.clone();
            }
            "--wait" => wait = true,
            "--json" => {
                json_path = Some(iter.next().ok_or_else(|| missing("--json"))?.clone());
            }
            "--threads" => {
                provided.push("--threads");
                options.threads = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| missing("--threads"))?;
            }
            "--subsumption" => {
                provided.push("--subsumption");
                options.subsumption = match iter.next().map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => {
                        return Err(CliError::Usage(
                            "--subsumption needs `on` or `off`".to_owned(),
                        ))
                    }
                };
            }
            "--trace" => {
                provided.push("--trace");
                options.trace = true;
            }
            "--limit" => {
                provided.push("--limit");
                options.limit = Some(
                    iter.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or_else(|| missing("--limit"))?,
                );
            }
            "--to" => {
                provided.push("--to");
                options.to_label = Some(iter.next().ok_or_else(|| missing("--to"))?.clone());
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "`submit` does not accept `{other}`"
                )))
            }
            other => {
                if file.replace(other.to_owned()).is_some() {
                    return Err(CliError::Usage(
                        "`submit` takes a single model file".to_owned(),
                    ));
                }
            }
        }
    }
    // Mirror the one-shot subcommands' allowed lists so an option can never
    // be silently ignored by the remote command either.
    let allowed: &[&str] = match command.as_str() {
        "verify" => &["--threads", "--trace"],
        "reach" => &["--threads", "--trace", "--to", "--limit"],
        "zones" => &["--threads", "--subsumption", "--trace", "--limit"],
        other => {
            return Err(CliError::Usage(format!(
                "unknown --command `{other}` (use verify, reach or zones)"
            )))
        }
    };
    if let Some(flag) = provided.iter().find(|flag| !allowed.contains(flag)) {
        return Err(CliError::Usage(format!(
            "`submit --command {command}` does not accept `{flag}` (allowed: {})",
            allowed.join(", ")
        )));
    }
    if json_path.is_some() && !wait {
        return Err(CliError::Usage(
            "`submit --json` needs `--wait` (the document exists once the job is done)".to_owned(),
        ));
    }
    let args = SubmitArgs {
        server: server
            .ok_or_else(|| CliError::Usage("`submit` needs --server HOST:PORT".to_owned()))?,
        file: file.ok_or_else(|| CliError::Usage("`submit` needs a model file".to_owned()))?,
        command,
        options,
        wait,
        json_path,
    };
    remote::cmd_submit(&args)
}

fn run_status(args: &[String]) -> Result<(), CliError> {
    let mut server = None;
    let mut job = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--server" => {
                server = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--server needs a value".to_owned()))?
                        .clone(),
                )
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "`status` does not accept `{other}`"
                )))
            }
            other => {
                let id = other.parse().map_err(|_| {
                    CliError::Usage(format!("job id must be a number, got `{other}`"))
                })?;
                if job.replace(id).is_some() {
                    return Err(CliError::Usage("`status` takes a single job id".to_owned()));
                }
            }
        }
    }
    let server =
        server.ok_or_else(|| CliError::Usage("`status` needs --server HOST:PORT".to_owned()))?;
    remote::cmd_status(&server, job)
}

fn run_export(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("--list") => {
            for scenario in scenarios::all() {
                println!("{:<22} {}", scenario.file, scenario.summary);
            }
            Ok(())
        }
        Some("--all") => {
            let dir = match (args.get(1).map(String::as_str), args.get(2)) {
                (Some("--dir"), Some(dir)) => dir.clone(),
                _ => return Err(CliError::Usage("use `export --all --dir DIR`".to_owned())),
            };
            std::fs::create_dir_all(&dir)
                .map_err(|e| CliError::Run(format!("creating {dir}: {e}")))?;
            for scenario in scenarios::all() {
                let path = format!("{dir}/{}", scenario.file);
                std::fs::write(&path, scenario.model.to_text())
                    .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        Some(name) if !name.starts_with('-') => {
            let scenario = scenarios::find(name).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown scenario `{name}` (try `transyt export --list`)"
                ))
            })?;
            let rendered = scenario.model.to_text();
            match (args.get(1).map(String::as_str), args.get(2)) {
                (Some("--out"), Some(path)) => {
                    std::fs::write(path, rendered)
                        .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
                    println!("wrote {path}");
                }
                (None, _) => print!("{rendered}"),
                _ => return Err(CliError::Usage("use `export NAME [--out PATH]`".to_owned())),
            }
            Ok(())
        }
        _ => Err(CliError::Usage(
            "use `export NAME`, `export --list` or `export --all --dir DIR`".to_owned(),
        )),
    }
}
