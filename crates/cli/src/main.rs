//! The `transyt` binary: argument parsing and dispatch to
//! [`transyt_cli::commands`].
//!
//! Task flags (`--threads`, `--trace`, …) are collected as `(name, value)`
//! pairs and lowered through [`TaskSpec::parse`] — the same lowering the
//! server applies to its query strings — so the two front ends share one
//! set of option names, defaults and validity checks and can never drift.

use std::process::ExitCode;
use std::time::Duration;

use transyt_cli::commands::{
    cmd_reach, cmd_table1, cmd_verify, cmd_zones, CliError, CommandResult, Options,
};
use transyt_cli::format::Model;
use transyt_cli::remote::{self, SubmitArgs};
use transyt_cli::scenarios;
use transyt_server::ServerConfig;
use transyt_session::{ProgressEvent, ProgressSink, TaskSpec};

const USAGE: &str = "\
transyt — relative-timing verification of timed circuits (DATE 2002 reproduction)

USAGE:
    transyt verify FILE [--threads N] [--trace] [--timeout SECS] [--progress] [--json PATH]
    transyt reach  FILE [--threads N] [--trace] [--to LABEL] [--limit N] [--timeout SECS]
                        [--max-configs N] [--progress] [--json PATH]
    transyt zones  FILE [--threads N] [--subsumption exact|inclusion|alu]
                        [--extrapolation none|lu|lu-active] [--bounds global|local]
                        [--trace] [--limit N] [--timeout SECS] [--max-configs N]
                        [--max-zone-bytes N] [--progress] [--json PATH]
    transyt table1      [--threads N] [--json PATH]
    transyt export NAME [--out PATH]     # or: transyt export --list / --all --dir DIR
    transyt serve       [--addr HOST:PORT] [--workers N] [--queue-depth N]
                        [--keep-results N] [--result-ttl SECS] [--data-dir DIR]
                        [--no-persist] [--fsync on|off]
    transyt store ls|gc --data-dir DIR [--keep-results N] [--result-ttl SECS]
    transyt submit FILE --server HOST:PORT [--command verify|reach|zones] [--wait]
                        [--watch] [--priority interactive|batch|background]
                        [--threads N] [--subsumption exact|inclusion|alu]
                        [--extrapolation none|lu|lu-active] [--bounds global|local]
                        [--trace] [--limit N] [--to LABEL] [--timeout SECS]
                        [--max-configs N] [--max-zone-bytes N] [--json PATH]
    transyt status [JOBID] --server HOST:PORT

FILE is a textual model in the .stg or .tts format (see docs/FILE_FORMATS.md;
shipped examples live in models/). Every exploration accepts --threads N and
produces identical output for every thread count; --timeout cancels the run at
the deadline, --max-configs / --max-zone-bytes bound its resources (a breach
ends the job as `budget_exceeded`), --progress streams exploration progress to
stderr. `serve` runs the long-lived verification server (model cache +
deduplicated priority job queue with admission control and result eviction;
docs/SERVER.md); with --data-dir it journals every job and stores
models/results on disk, surviving even SIGKILL with full recovery, and
`store ls` / `store gc` inspect or collect such a data dir offline. `submit`
and `status` are thin clients for the server: `submit` backs off and retries
when the queue is full (429 + Retry-After), `--watch` streams the job's live
progress events, and `submit --wait --json PATH` writes a document
byte-identical to the one-shot command's --json output. The embeddable
library API behind all of this is `transyt-session` (docs/API.md).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(message)) => {
            eprintln!("error: {message}\n\n{USAGE}");
            ExitCode::FAILURE
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing subcommand".to_owned()));
    };
    match command.as_str() {
        "verify" | "reach" | "zones" => {
            let parsed = collect_args(&args[1..], command)?;
            // One shared lowering with the server's query-string path: the
            // spec owns names, per-command acceptance and defaults.
            let spec = TaskSpec::parse(command, &parsed.pairs)
                .map_err(|e| CliError::Usage(e.to_string()))?;
            let file = parsed.file.ok_or_else(|| {
                CliError::Usage(format!("`{command}` needs a model file argument"))
            })?;
            let text = std::fs::read_to_string(&file)
                .map_err(|e| CliError::Run(format!("reading {file}: {e}")))?;
            let model = Model::parse(&text)?;
            let mut options = Options::from_spec(&spec);
            if parsed.progress {
                options.progress = progress_printer();
            }
            let result = match command.as_str() {
                "verify" => cmd_verify(&model, &options)?,
                "reach" => cmd_reach(&model, &options)?,
                _ => cmd_zones(&model, &options)?,
            };
            emit(result, parsed.json_path)
        }
        "table1" => {
            let parsed = collect_args(&args[1..], command)?;
            if parsed.file.is_some() {
                return Err(CliError::Usage("`table1` takes no model file".to_owned()));
            }
            let mut options = Options::default();
            for (name, value) in &parsed.pairs {
                match name.as_str() {
                    "threads" => {
                        options.threads = value.parse().map_err(|_| {
                            CliError::Usage(format!("bad `threads` value `{value}`"))
                        })?;
                    }
                    other => {
                        return Err(CliError::Usage(format!(
                            "`table1` does not accept `--{other}` (allowed: --threads, --json)"
                        )))
                    }
                }
            }
            if parsed.progress {
                options.progress = progress_printer();
            }
            emit(cmd_table1(&options)?, parsed.json_path)
        }
        "export" => run_export(&args[1..]),
        "serve" => run_serve(&args[1..]),
        "store" => run_store(&args[1..]),
        "submit" => run_submit(&args[1..]),
        "status" => run_status(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// A `--progress` sink: level, refinement and cancellation milestones on
/// stderr (batch events are deliberately skipped — they fire per merge
/// batch, which is too chatty for a terminal).
fn progress_printer() -> ProgressSink {
    ProgressSink::new(|event| match event {
        ProgressEvent::Level { index, frontier } => {
            eprintln!("progress: level {index} done, next frontier {frontier}");
        }
        ProgressEvent::Refinement { iteration } => {
            eprintln!("progress: refinement pass {iteration}");
        }
        ProgressEvent::Cancelled { expanded } => {
            eprintln!("progress: cancelled after {expanded} configurations");
        }
        ProgressEvent::Batch { .. } => {}
    })
}

fn emit(result: CommandResult, json_path: Option<String>) -> Result<(), CliError> {
    print!("{}", result.text);
    if let Some(path) = json_path {
        // The one canonical rendering — the same bytes the server serves.
        std::fs::write(&path, transyt_cli::json::render_document(&result.json))
            .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Flags collected from a task subcommand's arguments: task parameters as
/// `(name, value)` pairs for [`TaskSpec::parse`], plus the CLI-only bits.
struct CollectedArgs {
    file: Option<String>,
    pairs: Vec<(String, String)>,
    json_path: Option<String>,
    progress: bool,
}

/// Task flags that take a value (lowered as `(name, value)` pairs).
const VALUE_FLAGS: &[&str] = &[
    "threads",
    "subsumption",
    "extrapolation",
    "bounds",
    "limit",
    "to",
    "timeout",
    "max-configs",
    "max-zone-bytes",
];

fn collect_args(args: &[String], command: &str) -> Result<CollectedArgs, CliError> {
    let mut collected = CollectedArgs {
        file: None,
        pairs: Vec::new(),
        json_path: None,
        progress: false,
    };
    let mut iter = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs a value"));
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => {
                collected.json_path = Some(iter.next().ok_or_else(|| missing("--json"))?.clone());
            }
            "--progress" => collected.progress = true,
            "--trace" => collected.pairs.push(("trace".into(), "true".into())),
            flag if flag.starts_with("--") && VALUE_FLAGS.contains(&&flag[2..]) => {
                let value = iter.next().ok_or_else(|| missing(flag))?.clone();
                collected.pairs.push((flag[2..].to_owned(), value));
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "`{command}` does not accept `{other}`"
                )));
            }
            other => {
                if collected.file.replace(other.to_owned()).is_some() {
                    return Err(CliError::Usage(format!(
                        "`{command}` takes a single model file"
                    )));
                }
            }
        }
    }
    Ok(collected)
}

fn run_serve(args: &[String]) -> Result<(), CliError> {
    let mut config = ServerConfig::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = iter
                    .next()
                    .ok_or_else(|| CliError::Usage("--addr needs a value".to_owned()))?
                    .clone();
            }
            "--workers" => {
                config.workers = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&w| w > 0)
                    .ok_or_else(|| {
                        CliError::Usage("--workers needs a positive number".to_owned())
                    })?;
            }
            "--queue-depth" => {
                config.queue_depth = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        CliError::Usage("--queue-depth needs a positive number".to_owned())
                    })?;
            }
            "--keep-results" => {
                config.keep_results = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        CliError::Usage("--keep-results needs a positive number".to_owned())
                    })?;
            }
            "--result-ttl" => {
                let seconds: u64 = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .ok_or_else(|| {
                        CliError::Usage(
                            "--result-ttl needs a positive number of seconds".to_owned(),
                        )
                    })?;
                config.result_ttl = Some(Duration::from_secs(seconds));
            }
            "--data-dir" => {
                config.data_dir = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--data-dir needs a value".to_owned()))?
                        .clone(),
                );
            }
            "--no-persist" => config.data_dir = None,
            "--fsync" => {
                config.fsync = match iter.next().map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => return Err(CliError::Usage("--fsync needs `on` or `off`".to_owned())),
                };
            }
            other => {
                return Err(CliError::Usage(format!(
                    "`serve` does not accept `{other}` \
                     (allowed: --addr, --workers, --queue-depth, --keep-results, \
                     --result-ttl, --data-dir, --no-persist, --fsync)"
                )))
            }
        }
    }
    remote::cmd_serve(&config)
}

fn run_store(args: &[String]) -> Result<(), CliError> {
    let action = match args.first().map(String::as_str) {
        Some(action @ ("ls" | "gc")) => action,
        _ => {
            return Err(CliError::Usage(
                "use `store ls` or `store gc` with --data-dir DIR".to_owned(),
            ))
        }
    };
    let mut data_dir = None;
    // The same default cap the server applies (`ResultStoreConfig`).
    let mut keep_results: usize = 256;
    let mut result_ttl = None;
    let mut iter = args[1..].iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--data-dir" => {
                data_dir = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--data-dir needs a value".to_owned()))?
                        .clone(),
                );
            }
            "--keep-results" if action == "gc" => {
                keep_results = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        CliError::Usage("--keep-results needs a positive number".to_owned())
                    })?;
            }
            "--result-ttl" if action == "gc" => {
                let seconds: u64 = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&s| s > 0)
                    .ok_or_else(|| {
                        CliError::Usage(
                            "--result-ttl needs a positive number of seconds".to_owned(),
                        )
                    })?;
                result_ttl = Some(Duration::from_secs(seconds));
            }
            other => {
                return Err(CliError::Usage(format!(
                    "`store {action}` does not accept `{other}`"
                )))
            }
        }
    }
    let data_dir =
        data_dir.ok_or_else(|| CliError::Usage("`store` needs --data-dir DIR".to_owned()))?;
    match action {
        "ls" => transyt_cli::store_admin::cmd_ls(&data_dir),
        _ => transyt_cli::store_admin::cmd_gc(&data_dir, keep_results, result_ttl),
    }
}

fn run_submit(args: &[String]) -> Result<(), CliError> {
    let mut file = None;
    let mut server = None;
    let mut command = "verify".to_owned();
    let mut wait = false;
    let mut watch = false;
    let mut priority = None;
    let mut json_path = None;
    let mut pairs: Vec<(String, String)> = Vec::new();
    let mut iter = args.iter();
    let missing = |flag: &str| CliError::Usage(format!("{flag} needs a value"));
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--server" => server = Some(iter.next().ok_or_else(|| missing("--server"))?.clone()),
            "--command" => {
                command = iter.next().ok_or_else(|| missing("--command"))?.clone();
            }
            "--wait" => wait = true,
            "--watch" => watch = true,
            "--priority" => {
                let value = iter.next().ok_or_else(|| missing("--priority"))?.clone();
                if !matches!(value.as_str(), "interactive" | "batch" | "background") {
                    return Err(CliError::Usage(format!(
                        "--priority must be interactive, batch or background, got `{value}`"
                    )));
                }
                priority = Some(value);
            }
            "--json" => {
                json_path = Some(iter.next().ok_or_else(|| missing("--json"))?.clone());
            }
            "--trace" => pairs.push(("trace".into(), "true".into())),
            flag if flag.starts_with("--") && VALUE_FLAGS.contains(&&flag[2..]) => {
                let value = iter.next().ok_or_else(|| missing(flag))?.clone();
                pairs.push((flag[2..].to_owned(), value));
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "`submit` does not accept `{other}`"
                )))
            }
            other => {
                if file.replace(other.to_owned()).is_some() {
                    return Err(CliError::Usage(
                        "`submit` takes a single model file".to_owned(),
                    ));
                }
            }
        }
    }
    // The same lowering the server applies to the query string, so a spec
    // the client refuses is exactly a spec the server would refuse.
    let spec = TaskSpec::parse(&command, &pairs).map_err(|e| CliError::Usage(e.to_string()))?;
    // `--watch` streams events until the job settles, so it implies the
    // wait-for-the-result behavior.
    let wait = wait || watch;
    if json_path.is_some() && !wait {
        return Err(CliError::Usage(
            "`submit --json` needs `--wait` (the document exists once the job is done)".to_owned(),
        ));
    }
    let args = SubmitArgs {
        server: server
            .ok_or_else(|| CliError::Usage("`submit` needs --server HOST:PORT".to_owned()))?,
        file: file.ok_or_else(|| CliError::Usage("`submit` needs a model file".to_owned()))?,
        command,
        options: Options::from_spec(&spec),
        priority,
        wait,
        watch,
        json_path,
    };
    remote::cmd_submit(&args)
}

fn run_status(args: &[String]) -> Result<(), CliError> {
    let mut server = None;
    let mut job = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--server" => {
                server = Some(
                    iter.next()
                        .ok_or_else(|| CliError::Usage("--server needs a value".to_owned()))?
                        .clone(),
                )
            }
            other if other.starts_with('-') => {
                return Err(CliError::Usage(format!(
                    "`status` does not accept `{other}`"
                )))
            }
            other => {
                let id = other.parse().map_err(|_| {
                    CliError::Usage(format!("job id must be a number, got `{other}`"))
                })?;
                if job.replace(id).is_some() {
                    return Err(CliError::Usage("`status` takes a single job id".to_owned()));
                }
            }
        }
    }
    let server =
        server.ok_or_else(|| CliError::Usage("`status` needs --server HOST:PORT".to_owned()))?;
    remote::cmd_status(&server, job)
}

fn run_export(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("--list") => {
            for scenario in scenarios::all() {
                println!("{:<22} {}", scenario.file, scenario.summary);
            }
            Ok(())
        }
        Some("--all") => {
            let dir = match (args.get(1).map(String::as_str), args.get(2)) {
                (Some("--dir"), Some(dir)) => dir.clone(),
                _ => return Err(CliError::Usage("use `export --all --dir DIR`".to_owned())),
            };
            std::fs::create_dir_all(&dir)
                .map_err(|e| CliError::Run(format!("creating {dir}: {e}")))?;
            for scenario in scenarios::all() {
                let path = format!("{dir}/{}", scenario.file);
                std::fs::write(&path, scenario.model.to_text())
                    .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
                println!("wrote {path}");
            }
            Ok(())
        }
        Some(name) if !name.starts_with('-') => {
            let scenario = scenarios::find(name).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown scenario `{name}` (try `transyt export --list`)"
                ))
            })?;
            let rendered = scenario.model.to_text();
            match (args.get(1).map(String::as_str), args.get(2)) {
                (Some("--out"), Some(path)) => {
                    std::fs::write(path, rendered)
                        .map_err(|e| CliError::Run(format!("writing {path}: {e}")))?;
                    println!("wrote {path}");
                }
                (None, _) => print!("{rendered}"),
                _ => return Err(CliError::Usage("use `export NAME [--out PATH]`".to_owned())),
            }
            Ok(())
        }
        _ => Err(CliError::Usage(
            "use `export NAME`, `export --list` or `export --all --dir DIR`".to_owned(),
        )),
    }
}
