//! The scenario library behind `transyt export` and the shipped `models/`
//! directory.
//!
//! Every file in `models/` is the canonical rendering of one of these
//! builders — a test asserts they never drift apart, so the shipped text
//! files are guaranteed to parse and to describe exactly these systems.

use tts::{DelayInterval, Time, TsBuilder};

use crate::format::{Model, ModelSource, PropertySpec};

/// A named, exportable scenario.
pub struct Scenario {
    /// File name under `models/` (e.g. `ipcmos_1stage.stg`).
    pub file: &'static str,
    /// One-line description shown by `transyt export --list`.
    pub summary: &'static str,
    /// The model itself.
    pub model: Model,
}

fn d(l: i64, u: i64) -> DelayInterval {
    DelayInterval::new(Time::new(l), Time::new(u)).expect("static delay interval")
}

/// All shipped scenarios, in `models/` listing order.
pub fn all() -> Vec<Scenario> {
    vec![
        ipcmos_pipeline(1),
        ipcmos_pipeline(2),
        ipcmos_pipeline(3),
        ipcmos_pipeline(4),
        c_element(),
        ring_pipeline(),
        intro_fig1(),
        race_overlap(),
    ]
}

/// Looks a scenario up by its file name (with or without the extension).
pub fn find(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| {
        s.file == name
            || s.file.strip_suffix(".stg") == Some(name)
            || s.file.strip_suffix(".tts") == Some(name)
    })
}

/// The pulse-level closed `n`-stage IPCMOS pipeline of
/// [`ipcmos::pipeline_stg`], as a verification problem: deadlock-freedom
/// plus persistency of every local clock edge.
pub fn ipcmos_pipeline(n: usize) -> Scenario {
    let exported = ipcmos::pipeline_stg(n);
    let (file, summary) = match n {
        1 => (
            "ipcmos_1stage.stg",
            "1-stage IPCMOS pipeline between pulse-driven environments (pulse-level STG)",
        ),
        2 => (
            "ipcmos_2stage.stg",
            "2-stage IPCMOS pipeline (pulse-level STG)",
        ),
        3 => (
            "ipcmos_3stage.stg",
            "3-stage IPCMOS pipeline (pulse-level STG)",
        ),
        _ => (
            "ipcmos_4stage.stg",
            "4-stage IPCMOS pipeline (pulse-level STG)",
        ),
    };
    Scenario {
        file,
        summary,
        model: Model {
            name: exported.net.name().to_owned(),
            source: ModelSource::Stg(exported.net),
            delays: exported.delays,
            property: PropertySpec {
                deadlock_free: true,
                forbid_marked: false,
                persistent: exported.persistent_events,
            },
        },
    }
}

/// A C-element closing the handshake with its own environment: both inputs
/// rise, the output rises, both inputs fall, the output falls.
pub fn c_element() -> Scenario {
    let mut b = stg::StgBuilder::new("c_element");
    let a_up = b.add_transition("A+", stg::SignalRole::Input);
    let b_up = b.add_transition("B+", stg::SignalRole::Input);
    let c_up = b.add_transition("C+", stg::SignalRole::Output);
    let a_down = b.add_transition("A-", stg::SignalRole::Input);
    let b_down = b.add_transition("B-", stg::SignalRole::Input);
    let c_down = b.add_transition("C-", stg::SignalRole::Output);
    b.connect(a_up, c_up, 0);
    b.connect(b_up, c_up, 0);
    b.connect(c_up, a_down, 0);
    b.connect(c_up, b_down, 0);
    b.connect(a_down, c_down, 0);
    b.connect(b_down, c_down, 0);
    b.connect(c_down, a_up, 1);
    b.connect(c_down, b_up, 1);
    let net = b.build().expect("C-element net is well formed");
    Scenario {
        file: "c_element.stg",
        summary: "C-element handshake: C waits for both inputs on both phases",
        model: Model {
            name: "c_element".to_owned(),
            source: ModelSource::Stg(net),
            delays: vec![
                ("A+".to_owned(), d(2, 5)),
                ("B+".to_owned(), d(2, 5)),
                ("C+".to_owned(), d(1, 2)),
                ("A-".to_owned(), d(2, 4)),
                ("B-".to_owned(), d(2, 4)),
                ("C-".to_owned(), d(1, 2)),
            ],
            property: PropertySpec {
                deadlock_free: true,
                forbid_marked: false,
                persistent: vec!["C+".to_owned(), "C-".to_owned()],
            },
        },
    }
}

/// A three-cell ring with two items in flight: cell `i` raises `Ri` when an
/// item arrives and lowers it to pass the item on; a cell accepts a new item
/// only once empty again.
pub fn ring_pipeline() -> Scenario {
    let mut b = stg::StgBuilder::new("ring_pipeline");
    let rises: Vec<_> = (0..3)
        .map(|i| b.add_transition(format!("R{i}+"), stg::SignalRole::Output))
        .collect();
    let falls: Vec<_> = (0..3)
        .map(|i| b.add_transition(format!("R{i}-"), stg::SignalRole::Output))
        .collect();
    for i in 0..3 {
        // Item in cell i: arrives with Ri+, leaves with Ri-. Cells 0 and 1
        // start full.
        b.connect(rises[i], falls[i], u32::from(i != 2));
        // Item in transit from cell i-1 to cell i.
        b.connect(falls[(i + 2) % 3], rises[i], 0);
        // The bubble: cell i may only pass its item on once cell i+1 has
        // been vacated. Only cell 2 is vacant initially.
        b.connect(falls[(i + 1) % 3], falls[i], u32::from(i == 1));
    }
    let net = b.build().expect("ring net is well formed");
    Scenario {
        file: "ring_pipeline.stg",
        summary: "three-cell ring pipeline with two items and one bubble",
        model: Model {
            name: "ring_pipeline".to_owned(),
            source: ModelSource::Stg(net),
            delays: (0..3)
                .flat_map(|i| vec![(format!("R{i}+"), d(1, 3)), (format!("R{i}-"), d(2, 4))])
                .collect(),
            property: PropertySpec {
                deadlock_free: true,
                forbid_marked: false,
                persistent: vec!["R0+".to_owned(), "R0-".to_owned()],
            },
        },
    }
}

/// The introductory example of Fig. 1/2 of the paper: `g` must fire before
/// `d`, which only holds once the delay intervals are taken into account
/// (the engine needs at least one refinement).
pub fn intro_fig1() -> Scenario {
    let timed = bench::intro_example();
    let (ts, delay_map) = timed.into_parts();
    let mut delays: Vec<(tts::EventId, DelayInterval)> = delay_map.into_iter().collect();
    delays.sort_by_key(|&(event, _)| event);
    let delays = delays
        .into_iter()
        .map(|(event, delay)| (ts.alphabet().name(event).to_owned(), delay))
        .collect();
    Scenario {
        file: "intro_fig1.tts",
        summary: "Fig. 1 introductory example: g before d holds only under timing",
        model: Model {
            name: ts.name().to_owned(),
            source: ModelSource::Tts(ts),
            delays,
            property: PropertySpec {
                deadlock_free: false,
                forbid_marked: true,
                persistent: Vec::new(),
            },
        },
    }
}

/// The two-event race with overlapping delays: the violating interleaving is
/// timing consistent, so verification produces a timed counterexample trace.
pub fn race_overlap() -> Scenario {
    let mut b = TsBuilder::new("race_overlap");
    let s0 = b.add_state("s0");
    let ok = b.add_state("fast-first");
    let bad = b.add_state("slow-first");
    let done = b.add_state("done");
    let fast = b.add_transition(s0, "fast", ok);
    let slow = b.add_transition(s0, "slow", bad);
    b.add_transition_by_id(ok, slow, done);
    b.add_transition_by_id(bad, fast, done);
    b.mark_violation(bad, "slow overtook fast");
    b.set_initial(s0);
    let ts = b.build().expect("race is well formed");
    Scenario {
        file: "race_overlap.tts",
        summary: "overlapping-delay race: verification fails with a timed counterexample",
        model: Model {
            name: "race_overlap".to_owned(),
            source: ModelSource::Tts(ts),
            delays: vec![("fast".to_owned(), d(1, 4)), ("slow".to_owned(), d(2, 9))],
            property: PropertySpec {
                deadlock_free: false,
                forbid_marked: true,
                persistent: Vec::new(),
            },
        },
    }
}
