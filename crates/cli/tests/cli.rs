//! Integration tests of the `transyt` CLI: the shipped `models/` files stay
//! in sync with the scenario builders, every printed trace replays
//! step-by-step to its reported end state, and `--threads 1` and
//! `--threads 4` produce identical output (the PR acceptance criterion).

use std::path::PathBuf;
use std::process::Command;

use transyt_cli::commands::{
    cmd_reach, cmd_verify, cmd_zones, replay_rendered, trace_of_verdict, Options,
};
use transyt_cli::format::Model;
use transyt_cli::scenarios;
use transyt_session::Subsumption;

fn models_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

fn load(file: &str) -> Model {
    let path = models_dir().join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
    Model::parse(&text).unwrap_or_else(|e| panic!("parsing {file}: {e}"))
}

#[test]
fn shipped_models_match_their_scenario_builders() {
    let scenarios = scenarios::all();
    assert!(scenarios.len() >= 6, "at least six shipped scenarios");
    for scenario in scenarios {
        let path = models_dir().join(scenario.file);
        let shipped = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        assert_eq!(
            shipped,
            scenario.model.to_text(),
            "models/{} is stale; regenerate with `transyt export --all --dir models`",
            scenario.file
        );
        // And the shipped text round-trips through the parser.
        let reparsed = Model::parse(&shipped).unwrap();
        assert_eq!(reparsed.to_text(), shipped);
    }
}

/// The acceptance criterion: `transyt verify models/ipcmos_1stage.stg
/// --trace` prints a timed witness trace that replays step-by-step to the
/// reported end state, identically at `--threads 1` and `--threads 4`.
#[test]
fn ipcmos_1stage_trace_replays_identically_across_thread_counts() {
    let model = load("ipcmos_1stage.stg");
    let timed = model.timed_system().unwrap();
    let mut outputs = Vec::new();
    for threads in [1, 4] {
        let options = Options {
            threads,
            trace: true,
            ..Options::default()
        };
        let result = cmd_verify(&model, &options).unwrap();
        assert!(result.text.contains("VERIFIED"), "{}", result.text);
        assert!(result.text.contains("witness trace:"));
        assert!(result.text.contains("end state:"));
        assert!(result.text.contains("waveform"));

        // Replay the trace the CLI would print, step by step.
        let verdict = transyt::verify(
            &timed,
            &model.property(),
            &transyt::VerifyOptions {
                spec: transyt::ExploreSpec::threaded(threads),
                ..transyt::VerifyOptions::default()
            },
        );
        let trace = trace_of_verdict(&verdict, &timed);
        assert!(!trace.steps.is_empty());
        assert!(
            trace.steps.iter().all(|s| s.window.is_some()),
            "timed steps"
        );
        let end = replay_rendered(&trace, timed.underlying())
            .expect("witness trace replays step-by-step");
        assert_eq!(end, trace.end, "replay reaches the reported end state");
        outputs.push((result.text, trace));
    }
    assert_eq!(outputs[0], outputs[1], "threads 1 vs 4 output differs");
}

#[test]
fn race_overlap_fails_with_a_replayable_timed_counterexample() {
    let model = load("race_overlap.tts");
    let timed = model.timed_system().unwrap();
    for threads in [1, 4] {
        let options = Options {
            threads,
            trace: true,
            ..Options::default()
        };
        let result = cmd_verify(&model, &options).unwrap();
        assert!(result.text.contains("FAILED"), "{}", result.text);
        assert!(result.text.contains("counterexample trace:"));
        let verdict = transyt::verify(
            &timed,
            &model.property(),
            &transyt::VerifyOptions {
                spec: transyt::ExploreSpec::threaded(threads),
                ..transyt::VerifyOptions::default()
            },
        );
        let trace = trace_of_verdict(&verdict, &timed);
        assert_eq!(trace.kind, "counterexample");
        assert_eq!(trace.end, "slow-first");
        let end = replay_rendered(&trace, timed.underlying()).unwrap();
        assert_eq!(end, "slow-first");
        // The counterexample carries its timed firing window.
        assert_eq!(trace.steps[0].window.unwrap().to_string(), "[2, 4]");
    }
}

#[test]
fn every_shipped_model_verifies_to_its_documented_verdict() {
    for (file, expect_verified) in [
        ("ipcmos_1stage.stg", true),
        ("ipcmos_2stage.stg", true),
        ("c_element.stg", true),
        ("ring_pipeline.stg", true),
        ("intro_fig1.tts", true),
        ("race_overlap.tts", false),
    ] {
        let model = load(file);
        let result = cmd_verify(&model, &Options::default()).unwrap();
        let verified = result.text.contains("VERIFIED");
        assert_eq!(verified, expect_verified, "{file}: {}", result.text);
    }
}

#[test]
fn intro_example_needs_a_refinement_and_reports_constraints() {
    let model = load("intro_fig1.tts");
    let result = cmd_verify(&model, &Options::default()).unwrap();
    assert!(result.text.contains("VERIFIED (1 refinements"));
    assert!(result.text.contains("g < d"), "{}", result.text);
}

#[test]
fn reach_finds_marking_paths_and_zones_find_symbolic_traces() {
    let model = load("c_element.stg");
    let options = Options {
        to_label: Some("C+".to_owned()),
        ..Options::default()
    };
    let result = cmd_reach(&model, &options).unwrap();
    assert!(result.text.contains("path to first marking enabling `C+`"));
    assert!(result.text.contains("--A+-->"));
    assert!(result.text.contains("--B+-->"));

    let model = load("race_overlap.tts");
    let options = Options {
        trace: true,
        ..Options::default()
    };
    let result = cmd_zones(&model, &options).unwrap();
    assert!(result.text.contains("symbolic timed trace"));
    assert!(result.text.contains("end state: slow-first"));
    assert!(result.text.contains("clock of slow on entry"));
}

#[test]
fn zone_trace_is_identical_across_thread_counts_and_subsumption() {
    let model = load("ipcmos_1stage.stg");
    const POLICIES: [Subsumption; 3] =
        [Subsumption::Exact, Subsumption::Inclusion, Subsumption::Alu];
    let mut texts = Vec::new();
    for threads in [1, 4] {
        for subsumption in POLICIES {
            let options = Options {
                threads,
                subsumption,
                trace: true,
                ..Options::default()
            };
            // The pipeline has no violating or deadlocked state, so the
            // trace search reports unreachability — but the exploration
            // counters must agree between thread counts.
            let result = cmd_zones(&model, &options).unwrap();
            texts.push((subsumption, result.text));
        }
    }
    for i in 0..POLICIES.len() {
        assert_eq!(
            texts[i],
            texts[i + POLICIES.len()],
            "threads 1 vs 4 ({})",
            POLICIES[i]
        );
    }
}

#[test]
fn the_binary_runs_end_to_end() {
    let binary = env!("CARGO_BIN_EXE_transyt");
    let model = models_dir().join("ipcmos_1stage.stg");
    let output = Command::new(binary)
        .args([
            "verify",
            model.to_str().unwrap(),
            "--trace",
            "--threads",
            "2",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("VERIFIED"), "{stdout}");
    assert!(stdout.contains("witness trace:"));
    assert!(stdout.contains("end state:"));

    // JSON output lands where --json points.
    let json_path = std::env::temp_dir().join("transyt_cli_test_verify.json");
    let output = Command::new(binary)
        .args([
            "verify",
            model.to_str().unwrap(),
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.contains("\"verdict\":\"verified\""), "{json}");
    let _ = std::fs::remove_file(&json_path);

    // Usage errors are reported, not panicked.
    let output = Command::new(binary).args(["frobnicate"]).output().unwrap();
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown subcommand"), "{stderr}");
}

/// The `--json` documents are a wire format (CI artifacts diff them, the
/// server serves them byte-identically): these goldens were captured before
/// the rendering moved into the shared `transyt_cli::json` module and pin
/// the exact bytes.
#[test]
fn json_documents_are_unchanged_golden() {
    use transyt_cli::json::render_document;

    let verify = |file: &str| {
        let model = load(file);
        let options = Options {
            trace: true,
            ..Options::default()
        };
        render_document(&cmd_verify(&model, &options).unwrap().json)
    };
    assert_eq!(
        verify("race_overlap.tts"),
        "{\"verdict\":\"failed\",\"refinements\":0,\"explored_states\":4,\"constraints\":[],\
         \"model\":\"race_overlap\",\"trace\":{\"kind\":\"counterexample\",\"start\":\"s0\",\
         \"end\":\"slow-first\",\"steps\":[{\"event\":\"slow\",\"state\":\"slow-first\",\
         \"earliest\":2,\"latest\":4}]}}\n"
    );
    assert_eq!(
        verify("intro_fig1.tts"),
        "{\"verdict\":\"verified\",\"refinements\":1,\"explored_states\":7,\
         \"constraints\":[\"g < a (slack 1)\",\"b < c (slack 3)\",\"g < c (slack 6)\",\
         \"b < d (slack 3)\",\"g < d (slack 6)\",\"g < b (slack 1)\"],\
         \"model\":\"fig1-intro\",\"trace\":{\"kind\":\"witness\",\"start\":\"a0b0c0g0d0\",\
         \"end\":\"a1b1c1g1d1\",\"steps\":[\
         {\"event\":\"g\",\"state\":\"a0b0c0g1d0\",\"earliest\":1,\"latest\":1},\
         {\"event\":\"a\",\"state\":\"a1b0c0g1d0\",\"earliest\":2,\"latest\":2},\
         {\"event\":\"b\",\"state\":\"a1b1c0g1d0\",\"earliest\":2,\"latest\":2},\
         {\"event\":\"c\",\"state\":\"a1b1c1g1d0\",\"earliest\":7,\"latest\":7},\
         {\"event\":\"d\",\"state\":\"a1b1c1g1d1\",\"earliest\":7,\"latest\":7}]}}\n"
    );

    let reach = {
        let model = load("c_element.stg");
        let options = Options {
            to_label: Some("C+".to_owned()),
            ..Options::default()
        };
        render_document(&cmd_reach(&model, &options).unwrap().json)
    };
    assert_eq!(
        reach,
        "{\"model\":\"c_element\",\"markings\":8,\"firings\":10,\"deadlock_markings\":0,\
         \"states\":8,\"path_found\":true,\"path\":[\"A+\",\"B+\"]}\n"
    );

    let zones = {
        let model = load("race_overlap.tts");
        let options = Options {
            trace: true,
            ..Options::default()
        };
        render_document(&cmd_zones(&model, &options).unwrap().json)
    };
    assert_eq!(
        zones,
        "{\"model\":\"race_overlap\",\"configurations\":4,\"subsumed\":0,\
         \"alu_subsumed\":0,\"reachable_states\":4,\"violating_states\":1,\"deadlock_states\":1,\
         \"extrapolated_zones\":3,\"projected_clocks\":4,\
         \"local_bound_states\":3,\"tightened_clock_bounds\":4,\
         \"arena\":{\"allocated\":4,\"reused\":0,\"recycled\":1},\
         \"completed\":true,\"trace\":{\"kind\":\"witness\",\"start\":\"s0\",\
         \"end\":\"slow-first\",\"steps\":[{\"event\":\"slow\",\"state\":\"slow-first\",\
         \"earliest\":2,\"latest\":4}]}}\n"
    );
}

/// `--timeout SECS` cancels a run at the deadline and reports it as timed
/// out (with the partial exploration summary), instead of running to the
/// limit.
#[test]
fn timeout_flag_reports_timed_out_with_partial_results() {
    let binary = env!("CARGO_BIN_EXE_transyt");
    let model = models_dir().join("ipcmos_2stage.stg");
    let start = std::time::Instant::now();
    let output = Command::new(binary)
        .args([
            "zones",
            model.to_str().unwrap(),
            "--limit",
            "100000000",
            "--timeout",
            "1",
        ])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    // Far below the minutes the full exploration would take.
    assert!(start.elapsed() < std::time::Duration::from_secs(60));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("TIMED OUT: `zones` on `ipcmos_2stage`"),
        "{stdout}"
    );
    assert!(
        stdout.contains("partial results at the deadline:"),
        "{stdout}"
    );
    assert!(stdout.contains("cancelled after"), "{stdout}");
}

/// `--progress` streams exploration milestones to stderr without touching
/// stdout (whose bytes are pinned by the goldens).
#[test]
fn progress_flag_streams_milestones_to_stderr() {
    let binary = env!("CARGO_BIN_EXE_transyt");
    let model = models_dir().join("ipcmos_1stage.stg");
    let plain = Command::new(binary)
        .args(["verify", model.to_str().unwrap()])
        .output()
        .expect("binary runs");
    let with_progress = Command::new(binary)
        .args(["verify", model.to_str().unwrap(), "--progress"])
        .output()
        .expect("binary runs");
    assert!(with_progress.status.success());
    let stderr = String::from_utf8_lossy(&with_progress.stderr);
    assert!(stderr.contains("progress: refinement pass 0"), "{stderr}");
    assert!(stderr.contains("progress: level"), "{stderr}");
    assert_eq!(plain.stdout, with_progress.stdout, "stdout must not change");
}

#[test]
fn export_list_covers_every_shipped_model() {
    let binary = env!("CARGO_BIN_EXE_transyt");
    let output = Command::new(binary)
        .args(["export", "--list"])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    for scenario in scenarios::all() {
        assert!(stdout.contains(scenario.file), "missing {}", scenario.file);
    }
}
