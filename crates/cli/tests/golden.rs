//! Golden documents: the `--json` bytes of every shipped model, captured
//! with the pre-`transyt-session` CLI and pinned here, must be reproduced
//! byte-identically by the redesigned stack — through the thin CLI layer
//! *and* through a live server (the session layer is the only
//! implementation, so a drift in either is a bug in it).

use std::path::PathBuf;
use std::time::{Duration, Instant};

use transyt_cli::commands::{cmd_reach, cmd_verify, cmd_zones, Options};
use transyt_cli::format::Model;
use transyt_cli::json::render_document;
use transyt_server::{client, Server, ServerConfig};
use transyt_session::{render, Session, TaskSpec};

fn repo_path(relative: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join(relative)
}

fn model_text(file: &str) -> String {
    let path = repo_path("models").join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

const MODELS: &[&str] = &[
    "c_element.stg",
    "intro_fig1.tts",
    "ipcmos_1stage.stg",
    "ipcmos_2stage.stg",
    "ipcmos_3stage.stg",
    "race_overlap.tts",
    "ring_pipeline.stg",
];

fn golden_name(prefix: &str, file: &str) -> String {
    format!("{prefix}_{}.json", file.replace('.', "_"))
}

/// Every shipped model's `verify --trace --json` document through the thin
/// CLI command layer matches the pre-redesign bytes.
#[test]
fn cli_verify_documents_match_the_pre_redesign_goldens() {
    for file in MODELS {
        let model = Model::parse(&model_text(file)).expect("model parses");
        let options = Options {
            trace: true,
            ..Options::default()
        };
        let document = render_document(&cmd_verify(&model, &options).unwrap().json);
        assert_eq!(
            document,
            golden(&golden_name("verify", file)),
            "{file}: CLI verify document drifted from the pre-redesign golden"
        );
    }
}

/// The reach and zones document shapes match their goldens too.
#[test]
fn cli_reach_and_zones_documents_match_the_pre_redesign_goldens() {
    let model = Model::parse(&model_text("ipcmos_1stage.stg")).unwrap();
    let document = render_document(&cmd_zones(&model, &Options::default()).unwrap().json);
    assert_eq!(document, golden("zones_ipcmos_1stage_stg.json"));

    let model = Model::parse(&model_text("race_overlap.tts")).unwrap();
    let options = Options {
        trace: true,
        ..Options::default()
    };
    let document = render_document(&cmd_zones(&model, &options).unwrap().json);
    assert_eq!(document, golden("zones_race_overlap_tts.json"));

    let model = Model::parse(&model_text("c_element.stg")).unwrap();
    let options = Options {
        to_label: Some("C+".to_owned()),
        ..Options::default()
    };
    let document = render_document(&cmd_reach(&model, &options).unwrap().json);
    assert_eq!(document, golden("reach_c_element_stg.json"));

    let model = Model::parse(&model_text("ring_pipeline.stg")).unwrap();
    let document = render_document(&cmd_reach(&model, &Options::default()).unwrap().json);
    assert_eq!(document, golden("reach_ring_pipeline_stg.json"));
}

/// Every document in `tests/golden/` — the exact set
/// `scripts/regen-goldens.sh` writes — matches the current rendering: no
/// golden drifts silently, and no orphan file sits in the directory without
/// a test behind it.
#[test]
fn every_committed_golden_matches_current_rendering() {
    use std::collections::BTreeMap;

    let mut documents: BTreeMap<String, String> = BTreeMap::new();
    for file in MODELS {
        let model = Model::parse(&model_text(file)).expect("model parses");
        let options = Options {
            trace: true,
            ..Options::default()
        };
        documents.insert(
            golden_name("verify", file),
            render_document(&cmd_verify(&model, &options).unwrap().json),
        );
    }
    let model = Model::parse(&model_text("ipcmos_1stage.stg")).unwrap();
    documents.insert(
        golden_name("zones", "ipcmos_1stage.stg"),
        render_document(&cmd_zones(&model, &Options::default()).unwrap().json),
    );
    let model = Model::parse(&model_text("race_overlap.tts")).unwrap();
    let options = Options {
        trace: true,
        ..Options::default()
    };
    documents.insert(
        golden_name("zones", "race_overlap.tts"),
        render_document(&cmd_zones(&model, &options).unwrap().json),
    );
    let model = Model::parse(&model_text("c_element.stg")).unwrap();
    let options = Options {
        to_label: Some("C+".to_owned()),
        ..Options::default()
    };
    documents.insert(
        golden_name("reach", "c_element.stg"),
        render_document(&cmd_reach(&model, &options).unwrap().json),
    );
    let model = Model::parse(&model_text("ring_pipeline.stg")).unwrap();
    documents.insert(
        golden_name("reach", "ring_pipeline.stg"),
        render_document(&cmd_reach(&model, &Options::default()).unwrap().json),
    );

    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let mut committed: Vec<String> = std::fs::read_dir(&dir)
        .expect("golden directory exists")
        .map(|entry| entry.unwrap().file_name().into_string().unwrap())
        .collect();
    committed.sort();
    let expected: Vec<String> = documents.keys().cloned().collect();
    assert_eq!(
        committed, expected,
        "tests/golden/ and the regen script disagree on the golden set"
    );
    for (name, document) in &documents {
        assert_eq!(
            document,
            &golden(name),
            "{name} drifted from the committed golden; \
             review and run scripts/regen-goldens.sh"
        );
    }
}

/// The embedding API produces the same bytes directly, without the CLI.
#[test]
fn session_api_documents_match_the_pre_redesign_goldens() {
    let session = Session::new();
    for file in MODELS {
        let (cached, _) = session.add_model(&model_text(file)).expect("model parses");
        let spec = TaskSpec::verify(&cached.hash).with_trace(true);
        let outcome = session.run(&spec).expect("run succeeds");
        let document = render::render_document(&render::document(&outcome));
        assert_eq!(
            document,
            golden(&golden_name("verify", file)),
            "{file}: Session document drifted from the pre-redesign golden"
        );
    }
}

/// Every shipped model's document through a **live server** (real socket,
/// query-string options, worker pool, shared session) matches the goldens.
#[test]
fn server_documents_match_the_pre_redesign_goldens() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("bind");
    let handle = server.spawn();
    let addr = handle.addr().to_string();

    let mut jobs = Vec::new();
    for file in MODELS {
        let text = model_text(file);
        let (status, body) =
            client::request(&addr, "POST", "/models", Some(text.as_bytes())).unwrap();
        assert_eq!(status, 200, "{body}");
        let hash = client::json_str_field(&body, "hash").unwrap();
        let (status, body) = client::request(
            &addr,
            "POST",
            &format!("/jobs?model={hash}&command=verify&trace=true"),
            None,
        )
        .unwrap();
        assert_eq!(status, 202, "{body}");
        jobs.push((client::json_uint_field(&body, "job").unwrap(), *file));
    }

    let deadline = Instant::now() + Duration::from_secs(300);
    for (job, file) in jobs {
        loop {
            let (_, body) = client::request(&addr, "GET", &format!("/jobs/{job}"), None).unwrap();
            match client::json_str_field(&body, "status").as_deref() {
                Some("done") => break,
                Some("queued" | "running") => {}
                other => panic!("{file}: unexpected status {other:?}"),
            }
            assert!(Instant::now() < deadline, "{file}: job {job} too slow");
            std::thread::sleep(Duration::from_millis(15));
        }
        let (status, document) =
            client::request(&addr, "GET", &format!("/jobs/{job}/result"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            document,
            golden(&golden_name("verify", file)),
            "{file}: server document drifted from the pre-redesign golden"
        );
    }
    handle.shutdown().expect("graceful shutdown");
}
