//! Crash-recovery integration test: a real `transyt serve --data-dir`
//! process on a real socket is SIGKILLed mid-queue and restarted over the
//! same directory. The acceptance criteria of the durable-serving work:
//!
//! * completed jobs answer `GET /jobs/{id}/result` after the restart with
//!   the **byte-identical** pre-crash document, without re-running;
//! * queued / running jobs at the moment of the kill are re-enqueued and —
//!   determinism — re-run to documents byte-identical to the one-shot CLI;
//! * resubmitting an already-completed spec is answered from the on-disk
//!   store with **zero** new runs;
//! * a torn journal tail (garbage appended after the kill) is dropped, not
//!   trusted.

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use transyt_cli::commands::{cmd_verify, cmd_zones, Options};
use transyt_cli::format::Model;
use transyt_cli::json;
use transyt_server::client;

fn models_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

fn model_text(file: &str) -> String {
    let path = models_dir().join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// A `transyt serve` child process; killed on drop so a failing assert never
/// leaks a listener.
struct ServeProc {
    child: Child,
    addr: String,
}

impl ServeProc {
    /// Spawns `transyt serve --addr 127.0.0.1:0 --workers 1 --data-dir
    /// {data_dir}` and parses the bound address from its stdout banner.
    fn start(data_dir: &str) -> ServeProc {
        let mut child = Command::new(env!("CARGO_BIN_EXE_transyt"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "1",
                "--data-dir",
                data_dir,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("serve spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve prints its banner")
                .expect("stdout readable");
            if let Some(rest) = line.strip_prefix("transyt server listening on ") {
                break rest
                    .split_whitespace()
                    .next()
                    .expect("address in banner")
                    .to_owned();
            }
        };
        // Drain the rest of the banner in the background so the child never
        // blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServeProc { child, addr }
    }

    /// SIGKILL — no shutdown hooks, no flush beyond what fsync guaranteed.
    fn kill(mut self) {
        self.child.kill().expect("kill serve");
        self.child.wait().expect("reap serve");
        std::mem::forget(self); // already reaped
    }

    fn shutdown(mut self) {
        let (status, _) = client::request(&self.addr, "POST", "/shutdown", None).expect("shutdown");
        assert_eq!(status, 200);
        self.child.wait().expect("serve exits");
        std::mem::forget(self);
    }
}

impl Drop for ServeProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn upload(addr: &str, text: &str) -> String {
    let (status, body) =
        client::request(addr, "POST", "/models", Some(text.as_bytes())).expect("upload");
    assert_eq!(status, 200, "{body}");
    client::json_str_field(&body, "hash").expect("hash in upload response")
}

fn submit(addr: &str, query: &str) -> u64 {
    let (status, body) =
        client::request(addr, "POST", &format!("/jobs?{query}"), None).expect("submit");
    assert_eq!(status, 202, "{body}");
    client::json_uint_field(&body, "job").expect("job id in response")
}

fn job_body(addr: &str, job: u64) -> String {
    let (status, body) =
        client::request(addr, "GET", &format!("/jobs/{job}"), None).expect("status");
    assert_eq!(status, 200, "{body}");
    body
}

fn wait_for(addr: &str, job: u64, predicate: impl Fn(&str) -> bool, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = client::json_str_field(&job_body(addr, job), "status").expect("status field");
        if predicate(&status) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for job {job} to be {what} (status {status})"
        );
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn result_document(addr: &str, job: u64) -> String {
    let (status, document) =
        client::request(addr, "GET", &format!("/jobs/{job}/result"), None).expect("result");
    assert_eq!(status, 200, "{document}");
    document
}

fn healthz_stat(addr: &str, field: &str) -> u64 {
    let (status, body) = client::request(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(status, 200, "{body}");
    client::json_uint_field(&body, field)
        .unwrap_or_else(|| panic!("healthz carries `{field}`: {body}"))
}

/// The document the one-shot CLI writes for the given command + options.
fn one_shot_document(file: &str, command: &str, options: &Options) -> String {
    let model = Model::parse(&model_text(file)).expect("model parses");
    let result = match command {
        "verify" => cmd_verify(&model, options).expect("cli verify runs"),
        "zones" => cmd_zones(&model, options).expect("cli zones runs"),
        other => panic!("unexpected command {other}"),
    };
    json::render_document(&result.json)
}

#[test]
fn sigkill_mid_queue_recovers_to_byte_identical_results() {
    let data_dir =
        std::env::temp_dir().join(format!("transyt-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let data_dir = data_dir.to_str().expect("utf-8 temp dir").to_owned();

    // ---- Phase 1: a single-worker durable server takes four jobs. ----
    let server = ServeProc::start(&data_dir);
    let fig1 = upload(&server.addr, &model_text("intro_fig1.tts"));
    let pipeline = upload(&server.addr, &model_text("ipcmos_2stage.stg"));

    // Job 0 completes before the crash; its document is the recovery oracle.
    let job0 = submit(
        &server.addr,
        &format!("model={fig1}&command=verify&trace=true"),
    );
    assert_eq!(
        wait_for(&server.addr, job0, |s| s == "done", "done"),
        "done"
    );
    let job0_doc = result_document(&server.addr, job0);
    assert_eq!(
        job0_doc,
        one_shot_document(
            "intro_fig1.tts",
            "verify",
            &Options {
                trace: true,
                ..Options::default()
            }
        )
    );

    // Job 1 is running at the kill (the 2-stage zone exploration is slow
    // enough to still be in flight); jobs 2 and 3 sit queued behind it on
    // the single worker.
    let job1 = submit(
        &server.addr,
        &format!("model={pipeline}&command=zones&limit=3000"),
    );
    let job2 = submit(&server.addr, &format!("model={fig1}&command=verify"));
    let job3 = submit(
        &server.addr,
        &format!("model={pipeline}&command=zones&limit=500&threads=2"),
    );
    wait_for(&server.addr, job1, |s| s != "queued", "claimed");
    assert!(
        client::json_str_field(&job_body(&server.addr, job2), "status")
            .is_some_and(|s| s == "queued")
    );

    // ---- SIGKILL, then corrupt the journal tail like a torn write. ----
    server.kill();
    let journal = PathBuf::from(&data_dir).join("journal.log");
    let mut bytes = std::fs::read(&journal).expect("journal exists");
    bytes.extend_from_slice(b"v1 done 99 deadbeefdead"); // bad checksum, no newline
    std::fs::write(&journal, &bytes).expect("append torn tail");

    // `transyt store ls` reads the dir offline (and never repairs it).
    let output = Command::new(env!("CARGO_BIN_EXE_transyt"))
        .args(["store", "ls", "--data-dir", &data_dir])
        .output()
        .expect("store ls runs");
    assert!(output.status.success());
    let listing = String::from_utf8_lossy(&output.stdout);
    assert!(listing.contains("#0 done verify"), "{listing}");
    assert!(listing.contains("torn trailing bytes"), "{listing}");

    // ---- Phase 2: restart over the same dir. ----
    let server = ServeProc::start(&data_dir);

    // The torn tail was dropped, not trusted.
    assert!(healthz_stat(&server.addr, "torn_bytes_dropped") > 0);
    let persisted = healthz_stat(&server.addr, "stored_models");
    assert_eq!(persisted, 2, "both uploaded models persisted");

    // The completed job answers byte-identically from the store — zero runs
    // have happened in this process when we ask.
    let body = job_body(&server.addr, job0);
    assert!(body.contains("\"recovered\":true"), "{body}");
    assert_eq!(result_document(&server.addr, job0), job0_doc);
    // Interrupted jobs (one running, two queued at the kill) were
    // re-enqueued and re-run to byte-identical documents.
    for (job, file, command, options) in [
        (
            job1,
            "ipcmos_2stage.stg",
            "zones",
            Options {
                limit: Some(3000),
                ..Options::default()
            },
        ),
        (job2, "intro_fig1.tts", "verify", Options::default()),
        (
            job3,
            "ipcmos_2stage.stg",
            "zones",
            Options {
                limit: Some(500),
                threads: 2,
                ..Options::default()
            },
        ),
    ] {
        assert_eq!(
            wait_for(&server.addr, job, |s| s == "done", "done"),
            "done",
            "job {job} after restart"
        );
        let body = job_body(&server.addr, job);
        assert!(body.contains("\"recovered\":true"), "{body}");
        assert_eq!(
            result_document(&server.addr, job),
            one_shot_document(file, command, &options),
            "{file}: recovered document differs from one-shot CLI output"
        );
    }

    // Job 0's result was never re-run: only the three interrupted jobs
    // executed in this process.
    let runs_after_replay = healthz_stat(&server.addr, "runs_executed");
    assert_eq!(runs_after_replay, 3);

    // ---- Duplicate submission dedupes across the restart. ----
    let dup = submit(
        &server.addr,
        &format!("model={fig1}&command=verify&trace=true"),
    );
    assert_eq!(wait_for(&server.addr, dup, |s| s == "done", "done"), "done");
    assert_eq!(result_document(&server.addr, dup), job0_doc);
    assert_eq!(
        healthz_stat(&server.addr, "runs_executed"),
        runs_after_replay,
        "the duplicate must not run"
    );
    assert!(healthz_stat(&server.addr, "store_hits") >= 1);
    // The duplicate is a fresh submission, not a replayed one.
    let body = job_body(&server.addr, dup);
    assert!(!body.contains("\"recovered\""), "{body}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
