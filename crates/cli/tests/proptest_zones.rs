//! Property tests for the zone abstraction: LU-bounds extrapolation,
//! active-clock reduction and aLU subsumption are *exact* abstractions — on
//! randomized delay-window perturbations of the shipped models, every
//! extrapolation mode and every subsumption policy reports the same verdict
//! and the same reachable / violating / deadlocked discrete state sets as
//! the unabstracted exploration.

use std::path::PathBuf;

use dbm::{
    explore_timed_with, Bounds, ExploreSpec, Extrapolation, Subsumption, ZoneExplorationOptions,
    ZoneOutcome,
};
use proptest::prelude::*;
use transyt_cli::commands::{cmd_zones, Options};
use transyt_cli::format::Model;
use tts::{DelayInterval, Time, TimedTransitionSystem};

/// Small shipped models (the larger pipelines would dominate the proptest
/// budget without exercising anything new).
const MODELS: &[&str] = &["race_overlap.tts", "intro_fig1.tts", "c_element.stg"];

fn model_text(file: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../models")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The shipped model with every delay window replaced by a random one
/// (`0 <= lower <= upper`, all finite, so the exact exploration terminates).
fn perturbed_model(file: &str, picks: &[(i64, i64)]) -> Model {
    let mut model = Model::parse(&model_text(file)).expect("shipped model parses");
    for (slot, (_, delay)) in model.delays.iter_mut().enumerate() {
        let (lower, width) = picks[slot % picks.len()];
        *delay = DelayInterval::new(Time::new(lower), Time::new(lower + width)).unwrap();
    }
    model
}

fn perturbed(file: &str, picks: &[(i64, i64)]) -> TimedTransitionSystem {
    perturbed_model(file, picks)
        .timed_system()
        .expect("shipped model instantiates")
}

fn explore_policy(
    timed: &TimedTransitionSystem,
    extrapolation: Extrapolation,
    subsumption: Subsumption,
) -> ZoneOutcome {
    explore_timed_with(
        timed,
        ZoneExplorationOptions {
            spec: ExploreSpec {
                extrapolation,
                subsumption,
                limit: Some(100_000),
                ..ExploreSpec::default()
            },
        },
    )
}

fn explore(timed: &TimedTransitionSystem, extrapolation: Extrapolation) -> ZoneOutcome {
    explore_policy(timed, extrapolation, Subsumption::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn extrapolation_modes_report_identical_discrete_semantics(
        picks in proptest::collection::vec((0i64..6, 0i64..6), 1..8),
    ) {
        for file in MODELS {
            let timed = perturbed(file, &picks);
            let ZoneOutcome::Completed(exact) = explore(&timed, Extrapolation::None) else {
                panic!("{file}: exact exploration must terminate on bounded delays");
            };
            for mode in [Extrapolation::Lu, Extrapolation::LuActive] {
                let ZoneOutcome::Completed(report) = explore(&timed, mode) else {
                    panic!("{file}: abstracted exploration aborted under {mode}");
                };
                // The abstraction may merge zones (fewer configurations) but
                // must not change what is discretely reachable — the
                // verdicts of `transyt zones` are derived from these sets.
                prop_assert_eq!(&report.reachable_states, &exact.reachable_states);
                prop_assert_eq!(&report.violating_states, &exact.violating_states);
                prop_assert_eq!(&report.deadlock_states, &exact.deadlock_states);
                prop_assert!(
                    report.configurations <= exact.configurations,
                    "{file}: {mode} explored more configurations than exact"
                );
            }
        }
    }

    #[test]
    fn subsumption_policies_report_identical_discrete_semantics(
        picks in proptest::collection::vec((0i64..6, 0i64..6), 1..8),
    ) {
        for file in MODELS {
            let timed = perturbed(file, &picks);
            // Exact-duplicate deduplication is the reference semantics; run
            // it without extrapolation so nothing but the policy varies.
            let ZoneOutcome::Completed(exact) =
                explore_policy(&timed, Extrapolation::None, Subsumption::Exact)
            else {
                panic!("{file}: exact exploration must terminate on bounded delays");
            };
            // Exact dedup (and convex inclusion below) cannot attribute
            // any skip to aLU.
            prop_assert_eq!(exact.alu_subsumed, 0);
            for policy in [Subsumption::Inclusion, Subsumption::Alu] {
                let ZoneOutcome::Completed(report) =
                    explore_policy(&timed, Extrapolation::None, policy)
                else {
                    panic!("{file}: exploration aborted under {policy} subsumption");
                };
                // Coverage may prune configurations but must not change what
                // is discretely reachable — the verdicts of `transyt zones`
                // are derived from these sets.
                prop_assert_eq!(&report.reachable_states, &exact.reachable_states);
                prop_assert_eq!(&report.violating_states, &exact.violating_states);
                prop_assert_eq!(&report.deadlock_states, &exact.deadlock_states);
                prop_assert!(
                    report.configurations <= exact.configurations,
                    "{file}: {policy} subsumption explored more configurations than exact dedup"
                );
                if policy == Subsumption::Inclusion {
                    prop_assert_eq!(report.alu_subsumed, 0);
                }
            }
        }
    }

    /// The `bounds` dimension: per-state local LU bounds are an exact
    /// abstraction too. Under every extrapolation mode the `local` and
    /// `global` vectors report the same reachable / violating / deadlocked
    /// sets, local never enlarges the zone graph (its vectors are entrywise
    /// ≤ the global constants, so extrapolation only coarsens further), and
    /// the default rendering stays byte-identical across worker-thread
    /// counts.
    #[test]
    fn bounds_choices_report_identical_discrete_semantics(
        picks in proptest::collection::vec((0i64..6, 0i64..6), 1..8),
    ) {
        for file in MODELS {
            let model = perturbed_model(file, &picks);
            let timed = model.timed_system().expect("shipped model instantiates");
            for mode in [Extrapolation::None, Extrapolation::Lu, Extrapolation::LuActive] {
                let run = |bounds| explore_timed_with(
                    &timed,
                    ZoneExplorationOptions {
                        spec: ExploreSpec {
                            extrapolation: mode,
                            bounds,
                            limit: Some(100_000),
                            ..ExploreSpec::default()
                        },
                    },
                );
                let ZoneOutcome::Completed(global) = run(Bounds::Global) else {
                    panic!("{file}: exploration aborted under global bounds ({mode})");
                };
                let ZoneOutcome::Completed(local) = run(Bounds::Local) else {
                    panic!("{file}: exploration aborted under local bounds ({mode})");
                };
                prop_assert_eq!(&local.reachable_states, &global.reachable_states);
                prop_assert_eq!(&local.violating_states, &global.violating_states);
                prop_assert_eq!(&local.deadlock_states, &global.deadlock_states);
                prop_assert!(
                    local.configurations <= global.configurations,
                    "{file}: local bounds explored more configurations than global under {mode}"
                );
            }
            // The full `transyt zones` rendering (text and JSON document,
            // local bounds by default) is byte-identical at 1 and 4 worker
            // threads — the per-state bound table must not introduce any
            // schedule dependence.
            let render = |threads| {
                let options = Options { threads, ..Options::default() };
                let result = cmd_zones(&model, &options).expect("zones run succeeds");
                (result.text, transyt_cli::json::render_document(&result.json))
            };
            let (one, four) = (render(1), render(4));
            prop_assert!(one == four, "{file}: thread-count drift in rendered output");
        }
    }
}
