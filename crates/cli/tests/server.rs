//! Integration tests of `transyt serve`: a real server on a real socket,
//! concurrent jobs, cancellation mid-flight, and — the acceptance criterion —
//! result documents byte-identical to the one-shot CLI's `--json` output.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};

use transyt_cli::commands::{cmd_verify, Options};
use transyt_cli::format::Model;
use transyt_cli::json;
use transyt_server::{client, JobStatus, Server, ServerConfig, ServerHandle};

fn models_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../models")
}

fn model_text(file: &str) -> String {
    let path = models_dir().join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

fn start_server(workers: usize) -> (ServerHandle, String) {
    start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        ..ServerConfig::default()
    })
}

fn start_server_with(config: ServerConfig) -> (ServerHandle, String) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let handle = server.spawn();
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn upload(addr: &str, text: &str) -> String {
    let (status, body) =
        client::request(addr, "POST", "/models", Some(text.as_bytes())).expect("upload");
    assert_eq!(status, 200, "{body}");
    client::json_str_field(&body, "hash").expect("hash in upload response")
}

fn submit(addr: &str, query: &str) -> u64 {
    let (status, body) =
        client::request(addr, "POST", &format!("/jobs?{query}"), None).expect("submit");
    assert_eq!(status, 202, "{body}");
    client::json_uint_field(&body, "job").expect("job id in response")
}

fn job_status(addr: &str, job: u64) -> String {
    let (status, body) =
        client::request(addr, "GET", &format!("/jobs/{job}"), None).expect("status");
    assert_eq!(status, 200, "{body}");
    client::json_str_field(&body, "status").expect("status field")
}

fn wait_for(addr: &str, job: u64, predicate: impl Fn(&str) -> bool, what: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        let status = job_status(addr, job);
        if predicate(&status) {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for job {job} to be {what} (status {status})"
        );
        std::thread::sleep(Duration::from_millis(15));
    }
}

fn terminal(status: &str) -> bool {
    matches!(
        status,
        "done" | "failed" | "cancelled" | "timed_out" | "budget_exceeded"
    )
}

/// The document the one-shot CLI writes for `verify FILE --trace --json`.
fn cli_verify_document(file: &str) -> String {
    let model = Model::parse(&model_text(file)).expect("model parses");
    let options = Options {
        trace: true,
        ..Options::default()
    };
    let result = cmd_verify(&model, &options).expect("cli verify runs");
    json::render_document(&result.json)
}

/// The acceptance criterion: ≥4 concurrent verification jobs over a real
/// socket — passing and failing models mixed, one job cancelled mid-flight —
/// and every returned document is byte-identical to the one-shot CLI's.
#[test]
fn concurrent_jobs_match_the_one_shot_cli_byte_for_byte() {
    let (handle, addr) = start_server(4);

    // A long-running zones job first, so a worker picks it up immediately
    // and the cancellation lands mid-exploration: the 2-stage pipeline's
    // zone graph runs far beyond this test's patience without the cancel.
    let big = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let cancel_job = submit(&addr, &format!("model={big}&command=zones&limit=100000000"));

    // A mix of passing and failing models, all with traces.
    let verify_files = [
        "ipcmos_1stage.stg",
        "race_overlap.tts",
        "c_element.stg",
        "intro_fig1.tts",
        "ring_pipeline.stg",
    ];
    let jobs: Vec<(u64, &str)> = verify_files
        .iter()
        .map(|file| {
            let hash = upload(&addr, &model_text(file));
            (
                submit(&addr, &format!("model={hash}&command=verify&trace=true")),
                *file,
            )
        })
        .collect();

    // Cancel the zones job once it is running (with 4 workers it starts
    // immediately; the verify jobs share the remaining workers).
    wait_for(&addr, cancel_job, |s| s != "queued", "running");
    let (status, _) =
        client::request(&addr, "POST", &format!("/jobs/{cancel_job}/cancel"), None).unwrap();
    assert_eq!(status, 200);
    let cancelled = wait_for(&addr, cancel_job, terminal, "terminal");
    assert_eq!(cancelled, "cancelled", "cancel stops the exploration early");
    // A cancelled job serves no result document.
    let (status, _) =
        client::request(&addr, "GET", &format!("/jobs/{cancel_job}/result"), None).unwrap();
    assert_eq!(status, 409);

    for (job, file) in &jobs {
        let status = wait_for(&addr, *job, terminal, "terminal");
        assert_eq!(status, "done", "{file}");
        let (status, document) =
            client::request(&addr, "GET", &format!("/jobs/{job}/result"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            document,
            cli_verify_document(file),
            "{file}: server document differs from one-shot CLI --json output"
        );
    }

    // The failing model's document carries the replayable counterexample.
    let race = jobs
        .iter()
        .find(|(_, file)| *file == "race_overlap.tts")
        .unwrap();
    let (_, document) =
        client::request(&addr, "GET", &format!("/jobs/{}/result", race.0), None).unwrap();
    assert!(document.contains("\"verdict\":\"failed\""), "{document}");
    assert!(
        document.contains("\"kind\":\"counterexample\""),
        "{document}"
    );

    handle.shutdown().expect("graceful shutdown");
}

/// Cancelling a queued job (single worker, long job hogging it) prevents it
/// from ever running; shutting down cancels the rest of the queue.
#[test]
fn queued_jobs_cancel_without_running() {
    let (handle, addr) = start_server(1);
    let big = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let running = submit(&addr, &format!("model={big}&command=zones&limit=100000000"));
    let small = upload(&addr, &model_text("race_overlap.tts"));
    let queued = submit(&addr, &format!("model={small}&command=verify"));
    let stays_queued = submit(&addr, &format!("model={small}&command=verify"));

    wait_for(&addr, running, |s| s == "running", "running");
    assert_eq!(job_status(&addr, queued), "queued");
    let (status, body) =
        client::request(&addr, "POST", &format!("/jobs/{queued}/cancel"), None).unwrap();
    assert_eq!(status, 200, "{body}");
    assert_eq!(job_status(&addr, queued), "cancelled");

    // Graceful shutdown while the long job still occupies the only worker:
    // everything queued is cancelled without ever running. Then cancel the
    // running job so the worker can exit, and join. The listener is down
    // after shutdown, so inspect the shared state directly.
    let state = handle.state().clone();
    state.shutdown();
    assert_eq!(
        state.job(stays_queued as usize).unwrap().status,
        JobStatus::Cancelled
    );
    state.cancel(running as usize);
    handle.shutdown().expect("graceful shutdown");
    assert_eq!(
        state.job(queued as usize).unwrap().status,
        JobStatus::Cancelled
    );
    assert_eq!(
        state.job(running as usize).unwrap().status,
        JobStatus::Cancelled
    );
}

/// The model cache, the job listing and the error paths of the HTTP API.
#[test]
fn model_cache_and_api_errors() {
    let (handle, addr) = start_server(2);

    // healthz answers.
    let (status, body) = client::request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));

    // Upload is content-addressed: the second upload of the same text hits
    // the cache (parsed once), a different text gets a different hash.
    let text = model_text("c_element.stg");
    let (status, first) = client::request(&addr, "POST", "/models", Some(text.as_bytes())).unwrap();
    assert_eq!(status, 200);
    assert_eq!(client::json_str_field(&first, "cached").as_deref(), None);
    assert!(first.contains("\"cached\":false"), "{first}");
    assert!(first.contains("\"name\":\"c_element\""), "{first}");
    assert!(first.contains("\"kind\":\"stg\""), "{first}");
    let (_, second) = client::request(&addr, "POST", "/models", Some(text.as_bytes())).unwrap();
    assert!(second.contains("\"cached\":true"), "{second}");
    let other = upload(&addr, &model_text("race_overlap.tts"));
    assert_ne!(client::json_str_field(&first, "hash").unwrap(), other);

    let (status, listing) = client::request(&addr, "GET", "/models", None).unwrap();
    assert_eq!(status, 200);
    assert!(listing.contains("c_element"), "{listing}");
    assert!(listing.contains("race_overlap"), "{listing}");

    // Error paths: bad model, unknown hash, unknown command, unknown job,
    // unknown route, wrong method.
    let (status, body) = client::request(&addr, "POST", "/models", Some(b"not a model")).unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) =
        client::request(&addr, "POST", "/jobs?model=feedbeef&command=verify", None).unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("unknown model hash"), "{body}");
    let (status, body) = client::request(
        &addr,
        "POST",
        &format!("/jobs?model={other}&command=table1"),
        None,
    )
    .unwrap();
    assert_eq!(status, 400);
    assert!(body.contains("unknown command"), "{body}");
    let (status, _) = client::request(&addr, "GET", "/jobs/99", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(&addr, "GET", "/frobnicate", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = client::request(&addr, "DELETE", "/models", None).unwrap();
    assert_eq!(status, 405);

    // A reach job with --to through the full query-string path.
    let c_element = client::json_str_field(&first, "hash").unwrap();
    let job = submit(&addr, &format!("model={c_element}&command=reach&to=C%2B"));
    assert_eq!(wait_for(&addr, job, terminal, "terminal"), "done");
    let (status, document) =
        client::request(&addr, "GET", &format!("/jobs/{job}/result"), None).unwrap();
    assert_eq!(status, 200);
    assert!(document.contains("\"path_found\":true"), "{document}");
    assert!(document.contains("\"path\":[\"A+\",\"B+\"]"), "{document}");

    handle.shutdown().expect("graceful shutdown");
}

/// Two identical concurrent submissions are batched into **one** underlying
/// run: the session executes once, and both jobs hold references to the
/// same result document.
#[test]
fn identical_concurrent_submissions_share_one_run() {
    let (handle, addr) = start_server(2);
    // The 2-stage pipeline zone exploration is slow enough that the second
    // submission arrives while the first run is still in flight.
    let hash = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let query = format!("model={hash}&command=zones&limit=3000");
    let first = submit(&addr, &query);
    let second = submit(&addr, &query);
    assert_eq!(wait_for(&addr, first, terminal, "terminal"), "done");
    assert_eq!(wait_for(&addr, second, terminal, "terminal"), "done");

    let state = handle.state().clone();
    let stats = state.session().stats();
    assert_eq!(stats.runs_executed, 1, "one underlying run: {stats:?}");
    assert_eq!(
        stats.runs_attached + stats.memo_hits,
        1,
        "the duplicate attached or hit the memo: {stats:?}"
    );
    // Both jobs reference the *same* result allocation (not merely equal
    // bytes).
    let (_, a) = state.fetch_result(first as usize).unwrap();
    let (_, b) = state.fetch_result(second as usize).unwrap();
    assert!(std::sync::Arc::ptr_eq(&a.unwrap(), &b.unwrap()));
    // And the same document over the wire.
    let (_, doc_a) = client::request(&addr, "GET", &format!("/jobs/{first}/result"), None).unwrap();
    let (_, doc_b) =
        client::request(&addr, "GET", &format!("/jobs/{second}/result"), None).unwrap();
    assert_eq!(doc_a, doc_b);
    // A differently-spelled but identical spec also reuses the completed
    // run through the memo (still one execution): `subsumption=alu` is the
    // default the first submissions already ran under.
    let third = submit(&addr, &format!("{query}&subsumption=alu&trace=false"));
    assert_eq!(wait_for(&addr, third, terminal, "terminal"), "done");
    assert_eq!(state.session().stats().runs_executed, 1);
    // A different subsumption policy is a different zones task — it must
    // NOT be served from the aLU run.
    let fourth = submit(&addr, &format!("{query}&subsumption=inclusion"));
    assert_eq!(wait_for(&addr, fourth, terminal, "terminal"), "done");
    assert_eq!(
        state.session().stats().runs_executed,
        2,
        "a convex-inclusion zones job must run separately from the aLU run"
    );

    handle.shutdown().expect("graceful shutdown");
}

/// A `timeout=SECS` submission whose run exceeds the deadline surfaces as
/// status `timed_out` and a 409-with-reason on the result endpoint.
#[test]
fn job_deadlines_surface_as_timed_out() {
    let (handle, addr) = start_server(1);
    let hash = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let job = submit(
        &addr,
        &format!("model={hash}&command=zones&limit=100000000&timeout=1"),
    );
    assert_eq!(wait_for(&addr, job, terminal, "terminal"), "timed_out");
    let (status, body) =
        client::request(&addr, "GET", &format!("/jobs/{job}/result"), None).unwrap();
    assert_eq!(status, 409, "{body}");
    assert!(body.contains("timed out"), "{body}");
    // The partial text (explored-so-far summary) is still available.
    let (status, text) = client::request(&addr, "GET", &format!("/jobs/{job}/text"), None).unwrap();
    assert_eq!(status, 200);
    assert!(text.contains("TIMED OUT"), "{text}");
    handle.shutdown().expect("graceful shutdown");
}

/// The result store evicts beyond `--keep-results`: the oldest document is
/// dropped, `GET /jobs` reports the evicted id, and its result endpoint
/// answers 410.
#[test]
fn result_store_evicts_by_lru_cap() {
    let (handle, addr) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        keep_results: 1,
        ..ServerConfig::default()
    });
    let hash = upload(&addr, &model_text("race_overlap.tts"));
    // Distinct keys (different thread counts) so both actually run.
    let first = submit(&addr, &format!("model={hash}&command=verify"));
    let second = submit(&addr, &format!("model={hash}&command=verify&threads=2"));
    assert_eq!(wait_for(&addr, first, terminal, "terminal"), "done");
    assert_eq!(wait_for(&addr, second, terminal, "terminal"), "done");

    let (status, listing) = client::request(&addr, "GET", "/jobs", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        listing.contains(&format!("\"evicted\":[{first}]")),
        "{listing}"
    );
    let (status, body) =
        client::request(&addr, "GET", &format!("/jobs/{first}/result"), None).unwrap();
    assert_eq!(status, 410, "{body}");
    assert!(body.contains("evicted"), "{body}");
    // The younger job still serves.
    let (status, _) =
        client::request(&addr, "GET", &format!("/jobs/{second}/result"), None).unwrap();
    assert_eq!(status, 200);
    handle.shutdown().expect("graceful shutdown");
}

/// The `transyt submit` / `transyt status` client modes drive a server
/// end-to-end, and `submit --wait --json` writes the byte-identical document.
#[test]
fn submit_and_status_client_modes_round_trip() {
    let (handle, addr) = start_server(2);
    let binary = env!("CARGO_BIN_EXE_transyt");
    let model = models_dir().join("race_overlap.tts");
    let json_path =
        std::env::temp_dir().join(format!("transyt_submit_{}.json", std::process::id()));

    let output = Command::new(binary)
        .args([
            "submit",
            model.to_str().unwrap(),
            "--server",
            &addr,
            "--trace",
            "--wait",
            "--json",
            json_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("submitted job 0"), "{stdout}");
    assert!(stdout.contains("FAILED"), "{stdout}");
    assert!(stdout.contains("counterexample trace:"), "{stdout}");

    let document = std::fs::read_to_string(&json_path).unwrap();
    assert_eq!(document, cli_verify_document("race_overlap.tts"));
    let _ = std::fs::remove_file(&json_path);

    let output = Command::new(binary)
        .args(["status", "0", "--server", &addr])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("\"status\":\"done\""), "{stdout}");
    let output = Command::new(binary)
        .args(["status", "--server", &addr])
        .output()
        .expect("binary runs");
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("\"jobs\":["));

    handle.shutdown().expect("graceful shutdown");
}

/// The admission gate: with 1 worker and queue depth 4, the sixth
/// submission (one running + four queued) is refused with `429 Too Many
/// Requests` and a computed `Retry-After` header.
#[test]
fn admission_gate_refuses_with_429_and_retry_after() {
    let (handle, addr) = start_server_with(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    let big = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let running = submit(&addr, &format!("model={big}&command=zones&limit=100000000"));
    wait_for(&addr, running, |s| s == "running", "running");

    // Four distinct verify tasks fill the queue exactly to its depth.
    let small = upload(&addr, &model_text("race_overlap.tts"));
    let queued: Vec<u64> = (1..=4)
        .map(|threads| {
            submit(
                &addr,
                &format!("model={small}&command=verify&threads={threads}"),
            )
        })
        .collect();

    let (status, headers, body) = client::request_with_headers(
        &addr,
        "POST",
        &format!("/jobs?model={small}&command=verify&threads=5"),
        None,
    )
    .unwrap();
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("queue full"), "{body}");
    assert_eq!(client::json_uint_field(&body, "queued"), Some(4), "{body}");
    let retry_after: u64 = client::header(&headers, "retry-after")
        .expect("429 carries Retry-After")
        .parse()
        .expect("Retry-After is integral seconds");
    assert!(retry_after >= 1, "Retry-After floors at one second");

    // Freeing the worker drains the queue; admission opens again.
    let (status, _) =
        client::request(&addr, "POST", &format!("/jobs/{running}/cancel"), None).unwrap();
    assert_eq!(status, 200);
    for job in queued {
        assert_eq!(wait_for(&addr, job, terminal, "terminal"), "done");
    }
    let reopened = submit(&addr, &format!("model={small}&command=verify&threads=5"));
    assert_eq!(wait_for(&addr, reopened, terminal, "terminal"), "done");
    handle.shutdown().expect("graceful shutdown");
}

/// A `max-configs` budget breach is deterministic: the same budgeted zones
/// task stops at the same configuration count whether explored with one
/// thread or four, and surfaces as `budget_exceeded` plus a 409-with-reason
/// on the result endpoint.
#[test]
fn budget_breaches_are_deterministic_across_thread_counts() {
    let (handle, addr) = start_server(2);
    let hash = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let breached_used = |threads: usize| {
        let job = submit(
            &addr,
            &format!(
                "model={hash}&command=zones&limit=100000000&max-configs=5000&threads={threads}"
            ),
        );
        assert_eq!(
            wait_for(&addr, job, terminal, "terminal"),
            "budget_exceeded"
        );
        let (status, document) =
            client::request(&addr, "GET", &format!("/jobs/{job}"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(
            client::json_str_field(&document, "resource").as_deref(),
            Some("configs"),
            "{document}"
        );
        assert_eq!(
            client::json_uint_field(&document, "limit"),
            Some(5000),
            "{document}"
        );
        let (status, body) =
            client::request(&addr, "GET", &format!("/jobs/{job}/result"), None).unwrap();
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("exceeded its configs budget"), "{body}");
        client::json_uint_field(&document, "used").expect("breach carries `used`")
    };
    let serial = breached_used(1);
    let parallel = breached_used(4);
    assert!(serial >= 5000, "the breach fires at or past the limit");
    assert_eq!(
        serial, parallel,
        "budget enforcement must not depend on the thread count"
    );
    handle.shutdown().expect("graceful shutdown");
}

/// Strict priority over a real socket: with a single worker busy, four
/// `interactive` submissions all overtake an earlier `batch` submission —
/// the batch job leaves the queue only after every interactive job reached
/// a terminal state.
#[test]
fn interactive_jobs_overtake_a_queued_batch_job() {
    let (handle, addr) = start_server(1);
    let big = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let occupant = submit(&addr, &format!("model={big}&command=zones&limit=100000000"));
    wait_for(&addr, occupant, |s| s == "running", "running");

    let small = upload(&addr, &model_text("race_overlap.tts"));
    let batch = submit(
        &addr,
        &format!("model={small}&command=verify&threads=2&priority=batch"),
    );
    let interactive: Vec<u64> = (3..=6)
        .map(|threads| {
            submit(
                &addr,
                &format!("model={small}&command=verify&threads={threads}&priority=interactive"),
            )
        })
        .collect();

    // Release the worker; it must drain every interactive job before the
    // batch job is even claimed.
    let (status, _) =
        client::request(&addr, "POST", &format!("/jobs/{occupant}/cancel"), None).unwrap();
    assert_eq!(status, 200);
    let deadline = Instant::now() + Duration::from_secs(300);
    while job_status(&addr, batch) == "queued" {
        assert!(Instant::now() < deadline, "batch job never left the queue");
        std::thread::sleep(Duration::from_millis(10));
    }
    for job in &interactive {
        assert!(
            terminal(&job_status(&addr, *job)),
            "interactive job {job} had not finished when the batch job was claimed"
        );
    }
    assert_eq!(wait_for(&addr, batch, terminal, "terminal"), "done");
    handle.shutdown().expect("graceful shutdown");
}

/// The `/jobs/{id}/events` stream replays a deterministic run lifecycle:
/// the same zones task streams the identical event sequence at one and two
/// exploration threads (queue-position frames aside), opening with
/// `running` and closing with a terminal frame.
#[test]
fn event_streams_are_identical_across_thread_counts() {
    let (handle, addr) = start_server(2);
    let hash = upload(&addr, &model_text("ipcmos_2stage.stg"));
    let lifecycle = |threads: usize| {
        let job = submit(
            &addr,
            &format!("model={hash}&command=zones&limit=3000&threads={threads}"),
        );
        let events = client::stream_events(&addr, job, |_| ()).expect("event stream");
        events
            .into_iter()
            .filter(|event| !event.contains("\"queued\""))
            .collect::<Vec<_>>()
    };
    let serial = lifecycle(1);
    let parallel = lifecycle(2);
    assert_eq!(
        serial.first().map(String::as_str),
        Some("{\"type\":\"running\"}")
    );
    assert_eq!(
        serial.last().map(String::as_str),
        Some("{\"type\":\"terminal\",\"status\":\"done\"}")
    );
    assert!(
        serial.iter().any(|event| event.contains("\"batch\"")),
        "{serial:?}"
    );
    assert_eq!(
        serial, parallel,
        "the progress stream must not depend on the thread count"
    );
    handle.shutdown().expect("graceful shutdown");
}

/// The data-dir lock: while one server owns a data dir, a second server
/// refuses to start on it (the lock file names the owning pid).
#[test]
fn second_server_refuses_a_locked_data_dir() {
    let dir = std::env::temp_dir().join(format!("transyt-lock-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        data_dir: Some(dir.to_str().unwrap().to_owned()),
        ..ServerConfig::default()
    };
    let first = Server::bind(&config).expect("first server owns the dir");
    let error = match Server::bind(&config) {
        Err(error) => error.to_string(),
        Ok(_) => panic!("a second server started on a locked data dir"),
    };
    assert!(error.contains("locked by running process"), "{error}");
    let handle = first.spawn();
    handle.shutdown().expect("graceful shutdown");
    // With the first server gone the dir opens again.
    let reopened = Server::bind(&config).expect("lock released on shutdown");
    reopened.spawn().shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&dir);
}
