//! Property tests for the textual model formats and the witness traces:
//! printing then parsing a random model is the identity, and the failure
//! trace a verification reports replays to the reported violating state —
//! identically for the sequential and the 4-thread driver.

use proptest::prelude::*;
use stg::{SignalRole, StgBuilder};
use transyt::{FailureKind, Verdict, VerifyOptions};
use transyt_cli::format::{Model, ModelSource, PropertySpec};
use tts::{DelayInterval, Time, TimedTransitionSystem, TsBuilder};

/// Builds a random live STG: alternating signal-edge transitions connected
/// in a cycle, plus random forward arcs and random forbidden-marking
/// conjunctions (`violation when …` directives).
fn random_stg(
    transitions: usize,
    extra_arcs: &[(usize, usize)],
    forbidden: &[Vec<usize>],
) -> stg::Stg {
    let count = transitions.max(2);
    let mut b = StgBuilder::new("random");
    let ids: Vec<_> = (0..count)
        .map(|i| {
            let signal = (b'A' + (i / 2 % 8) as u8) as char;
            let polarity = if i % 2 == 0 { '+' } else { '-' };
            b.add_transition(
                format!("{signal}{polarity}"),
                match i % 3 {
                    0 => SignalRole::Input,
                    1 => SignalRole::Output,
                    _ => SignalRole::Internal,
                },
            )
        })
        .collect();
    let mut places = Vec::new();
    for (i, &t) in ids.iter().enumerate() {
        let next = ids[(i + 1) % ids.len()];
        places.push(b.connect(t, next, u32::from(i + 1 == ids.len())));
    }
    for &(from, to) in extra_arcs {
        let f = ids[from % ids.len()];
        let t = ids[to % ids.len()];
        if f != t {
            places.push(b.connect(f, t, 0));
        }
    }
    for conjunction in forbidden {
        b.forbid_marking(conjunction.iter().map(|&p| places[p % places.len()]));
    }
    b.build().unwrap()
}

/// Random timed system over a small state graph with one marked state.
fn random_timed(
    states: usize,
    transitions: &[(usize, usize, usize)],
    delays: &[(i64, i64)],
) -> TimedTransitionSystem {
    let count = states.clamp(2, 8);
    let mut b = TsBuilder::new("random-timed");
    let ids: Vec<_> = (0..count).map(|i| b.add_state(format!("s{i}"))).collect();
    for (i, &s) in ids.iter().enumerate().skip(1) {
        b.add_transition(ids[i - 1], format!("e{}", (i - 1) % 5), s);
    }
    for &(from, event, to) in transitions {
        b.add_transition(
            ids[from % count],
            format!("e{}", event % 5),
            ids[to % count],
        );
    }
    b.mark_violation(ids[count - 1], "last state is marked");
    b.set_initial(ids[0]);
    let mut timed = TimedTransitionSystem::new(b.build().unwrap());
    for (i, &(lower, width)) in delays.iter().enumerate() {
        let l = lower.rem_euclid(6);
        let w = width.rem_euclid(6);
        let name = format!("e{}", i % 5);
        if timed.underlying().alphabet().lookup(&name).is_some() {
            timed.set_delay_by_name(
                &name,
                DelayInterval::new(Time::new(l), Time::new(l + w)).unwrap(),
            );
        }
    }
    timed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn stg_models_round_trip_through_print_and_parse(
        transitions in 2usize..10,
        extra_arcs in proptest::collection::vec((0usize..10, 0usize..10), 0..4),
        delay_picks in proptest::collection::vec((0usize..10, 0i64..9, 0i64..9), 0..4),
        deadlock_free in any::<bool>(),
        forbidden in proptest::collection::vec(
            proptest::collection::vec(0usize..24, 1..4), 0..3),
    ) {
        let net = random_stg(transitions, &extra_arcs, &forbidden);
        prop_assert_eq!(net.forbidden_markings().len(), forbidden.len());
        let labels: Vec<String> = net.transitions().map(|t| net.label(t).to_owned()).collect();
        let delays = delay_picks
            .iter()
            .map(|&(pick, l, w)| {
                let label = labels[pick % labels.len()].clone();
                (label, DelayInterval::new(Time::new(l), Time::new(l + w)).unwrap())
            })
            .collect();
        let model = Model {
            name: "random".to_owned(),
            source: ModelSource::Stg(net.clone()),
            delays,
            property: PropertySpec {
                deadlock_free,
                forbid_marked: false,
                persistent: vec![labels[0].clone()],
            },
        };
        let printed = model.to_text();
        let reparsed = Model::parse(&printed).unwrap();
        // Canonical printing is a fixed point of parse ∘ print…
        prop_assert_eq!(&reparsed.to_text(), &printed);
        // …and the parsed net is structurally identical.
        let ModelSource::Stg(reparsed_net) = &reparsed.source else {
            return Err(TestCaseError::fail("expected an stg"));
        };
        prop_assert_eq!(reparsed_net, &net);
        prop_assert_eq!(&reparsed.delays, &model.delays);
        prop_assert_eq!(&reparsed.property, &model.property);
    }

    #[test]
    fn tts_models_round_trip_through_print_and_parse(
        states in 2usize..6,
        transitions in proptest::collection::vec((0usize..6, 0usize..5, 0usize..6), 0..8),
        delays in proptest::collection::vec((0i64..6, 0i64..6), 5),
    ) {
        let timed = random_timed(states, &transitions, &delays);
        let (ts, delay_map) = timed.into_parts();
        let mut delay_list: Vec<(tts::EventId, DelayInterval)> = delay_map.into_iter().collect();
        delay_list.sort_by_key(|&(event, _)| event);
        let model = Model {
            name: ts.name().to_owned(),
            source: ModelSource::Tts(ts.clone()),
            delays: delay_list
                .into_iter()
                .map(|(event, delay)| (ts.alphabet().name(event).to_owned(), delay))
                .collect(),
            property: PropertySpec {
                deadlock_free: false,
                forbid_marked: true,
                persistent: Vec::new(),
            },
        };
        let printed = model.to_text();
        let reparsed = Model::parse(&printed).unwrap();
        prop_assert_eq!(&reparsed.to_text(), &printed);
        // The reparsed system verifies to the same verdict as the original.
        let original = transyt::verify(
            &model.timed_system().unwrap(),
            &model.property(),
            &VerifyOptions::default(),
        );
        let roundtripped = transyt::verify(
            &reparsed.timed_system().unwrap(),
            &reparsed.property(),
            &VerifyOptions::default(),
        );
        prop_assert_eq!(original.is_verified(), roundtripped.is_verified());
    }

    #[test]
    fn failure_traces_replay_to_the_violating_state_at_any_thread_count(
        states in 2usize..6,
        transitions in proptest::collection::vec((0usize..6, 0usize..5, 0usize..6), 0..8),
        delays in proptest::collection::vec((0i64..6, 0i64..6), 5),
    ) {
        let timed = random_timed(states, &transitions, &delays);
        let property = transyt::SafetyProperty::new("marked").forbid_marked_states();
        let sequential = transyt::verify(&timed, &property, &VerifyOptions::default());
        let parallel = transyt::verify(
            &timed,
            &property,
            &VerifyOptions { spec: transyt::ExploreSpec::threaded(4), ..VerifyOptions::default() },
        );
        // Identical verdicts — including the embedded failure trace.
        prop_assert_eq!(&sequential, &parallel);
        if let Verdict::Failed { counterexample, .. } = &sequential {
            let ts = timed.underlying();
            let end = counterexample.trace.replay(ts);
            prop_assert_eq!(end, Some(counterexample.trace.end_state()));
            match &counterexample.kind {
                FailureKind::MarkedState { .. } => {
                    prop_assert!(!ts.violations(counterexample.trace.end_state()).is_empty());
                }
                FailureKind::Deadlock => {
                    prop_assert!(ts.transitions_from(counterexample.trace.end_state()).is_empty());
                }
                FailureKind::PersistencyViolation { .. } => {}
            }
        }
    }
}
